"""Tests for the metrics registry and its event-bus subscriber.

The instruments mirror the Prometheus data model (counter / gauge /
histogram with label sets), and a single :class:`MetricsSubscriber` turns a
traced sort — span events plus machine super-steps on one bus — into
scrape-ready numbers that must agree with the cost ledger.
"""

from __future__ import annotations

import json

import pytest

from repro.core.machine_sort import MachineSorter
from repro.graphs import k2
from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MachineTimeline,
    MetricsRegistry,
    MetricsSubscriber,
    Tracer,
)
from repro.observability.events import point_event


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("requests_total")
        assert c.value() == 0
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_label_sets_are_independent_series(self):
        c = Counter("rounds_total")
        c.inc(3, kind="s2")
        c.inc(2, kind="routing")
        c.inc(1, kind="s2")
        assert c.value(kind="s2") == 4
        assert c.value(kind="routing") == 2
        assert c.value(kind="free") == 0

    def test_label_order_does_not_matter(self):
        c = Counter("x_total")
        c.inc(1, a="1", b="2")
        assert c.value(b="2", a="1") == 1

    def test_negative_increment_rejected(self):
        c = Counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name")
        with pytest.raises(ValueError):
            Counter("")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4

    def test_gauges_can_go_negative(self):
        g = Gauge("delta")
        g.dec(3)
        assert g.value() == -3


class TestHistogram:
    def test_cumulative_bucket_semantics(self):
        h = Histogram("pairs", buckets=(1, 2, 4))
        for v in (1, 1, 2, 3, 100):
            h.observe(v)
        snap = h.snapshot_series()
        assert snap["count"] == 5
        assert snap["sum"] == 107
        # cumulative: le=1 holds 2, le=2 holds 3, le=4 holds 4, +Inf holds all
        assert snap["buckets"] == {"1": 2, "2": 3, "4": 4, "+Inf": 5}

    def test_unknown_series_snapshot_is_empty(self):
        h = Histogram("pairs")
        assert h.snapshot_series(kind="nope") == {"count": 0, "sum": 0.0, "buckets": {}}

    def test_unsorted_or_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(4, 2, 1))


class TestMetricsRegistry:
    def test_idempotent_creation_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("spans_total", "help text")
        b = reg.counter("spans_total")
        assert a is b
        assert "spans_total" in reg
        assert "other" not in reg

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_expose_text_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("spans_total", "spans seen").inc(2, kind="s2")
        reg.gauge("depth").set(3)
        reg.histogram("pairs", buckets=(1, 2)).observe(2)
        text = reg.expose_text()
        assert "# HELP spans_total spans seen" in text
        assert "# TYPE spans_total counter" in text
        assert 'spans_total{kind="s2"} 2' in text
        assert "# TYPE depth gauge" in text
        assert "depth 3" in text
        assert "# TYPE pairs histogram" in text
        assert 'pairs_bucket{le="2"} 1' in text
        assert 'pairs_bucket{le="+Inf"} 1' in text
        assert "pairs_sum 2" in text
        assert "pairs_count 1" in text

    def test_empty_registry_exposes_nothing(self):
        assert MetricsRegistry().expose_text() == ""
        assert MetricsRegistry().snapshot() == {}

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(1, kind="s2")
        reg.histogram("h", buckets=(1,)).observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["series"] == [{"labels": {"kind": "s2"}, "value": 1}]
        assert snap["h"]["series"][0]["count"] == 1


class TestMetricsSubscriber:
    def _instrumented_run(self, rng, r=3):
        tracer = Tracer()
        registry = MetricsRegistry()
        tracer.bus.subscribe(MetricsSubscriber(registry))
        sorter = MachineSorter.for_factor(k2(), r)
        timeline = MachineTimeline(sorter.network, bus=tracer.bus)
        machine, ledger = sorter.sort(
            rng.integers(0, 100, size=2**r), tracer=tracer, timeline=timeline
        )
        return tracer, timeline, registry, machine, ledger

    def test_span_counters_agree_with_span_tree(self, rng):
        tracer, _, registry, _, ledger = self._instrumented_run(rng)
        spans = registry.counter("repro_spans_total")
        total_spans = sum(v for _, v in spans.series())
        assert total_spans == sum(1 for _ in tracer.iter_spans())
        # Theorem 1 straight from the scrape: (r-1)^2 s2 spans at r=3
        s2_spans = sum(v for k, v in spans.series() if dict(k).get("kind") == "s2")
        assert s2_spans == 4

    def test_rounds_counter_agrees_with_ledger(self, rng):
        _, _, registry, _, ledger = self._instrumented_run(rng)
        rounds = registry.counter("repro_rounds_total")
        assert sum(v for _, v in rounds.series()) == ledger.total_rounds
        assert rounds.value(kind="s2") == ledger.s2_rounds
        assert rounds.value(kind="routing") == ledger.routing_rounds

    def test_comparisons_counter_agrees_with_span_attributes(self, rng):
        tracer, _, registry, machine, _ = self._instrumented_run(rng)
        comparisons = registry.counter("repro_comparisons_total")
        attributed = sum(
            int(s.attrs.get("comparisons", 0)) for s in tracer.iter_spans()
        )
        assert sum(v for _, v in comparisons.series()) == attributed
        # spans attribute most (not all) machine comparisons to phases
        assert 0 < attributed <= machine.comparisons

    def test_machine_step_instruments(self, rng):
        _, timeline, registry, machine, _ = self._instrumented_run(rng)
        assert registry.counter("repro_machine_steps_total").value() == machine.operations
        pairs_total = registry.counter("repro_machine_pairs_total").value()
        assert pairs_total == sum(s.pairs for s in timeline.steps)
        hist = registry.histogram("repro_machine_pairs").snapshot_series()
        assert hist["count"] == machine.operations
        util = registry.gauge("repro_machine_utilisation").value()
        assert 0 < util <= 1.0

    def test_depth_gauge_returns_to_zero(self, rng):
        _, _, registry, _, _ = self._instrumented_run(rng)
        assert registry.gauge("repro_span_depth").value() == 0

    def test_span_seconds_histogram_observes_every_span(self, rng):
        tracer, _, registry, _, _ = self._instrumented_run(rng)
        snap = registry.histogram("repro_span_seconds").snapshot_series()
        assert snap["count"] == sum(1 for _ in tracer.iter_spans())
        assert snap["sum"] >= 0

    def test_point_events_counted_by_name(self):
        sub = MetricsSubscriber()
        sub.on_event(point_event("distribute"))
        sub.on_event(point_event("distribute"))
        sub.on_event(point_event("cleanup"))
        points = sub.registry.counter("repro_points_total")
        assert points.value(name="distribute") == 2
        assert points.value(name="cleanup") == 1

    def test_subscriber_creates_registry_when_omitted(self):
        sub = MetricsSubscriber()
        assert "repro_spans_total" in sub.registry

    def test_exposition_round_trip_scrapeable(self, rng):
        _, _, registry, _, _ = self._instrumented_run(rng)
        text = registry.expose_text()
        assert "# TYPE repro_spans_total counter" in text
        assert "# TYPE repro_machine_pairs histogram" in text
        # every sample line is "name{labels} value"
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name


class TestInstrumentHelpers:
    """Histogram.time() / Counter.count_exceptions() / Gauge.set_max()."""

    def test_histogram_time_observes_and_exposes_elapsed(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", "test", buckets=(0.5, 1.0))
        with hist.time(cell="a") as timer:
            pass
        assert timer.elapsed_ns > 0
        assert timer.elapsed_s == pytest.approx(timer.elapsed_ns / 1e9)
        series = hist.snapshot_series(cell="a")
        assert series["count"] == 1
        assert series["sum"] == pytest.approx(timer.elapsed_s)

    def test_histogram_time_observes_even_when_the_body_raises(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", "test", buckets=(0.5,))
        with pytest.raises(RuntimeError):
            with hist.time():
                raise RuntimeError("boom")
        assert hist.snapshot_series()["count"] == 1

    def test_counter_count_exceptions_counts_only_failures(self):
        registry = MetricsRegistry()
        errors = registry.counter("errs_total", "test")
        with errors.count_exceptions(kind="x"):
            pass
        assert errors.value(kind="x") == 0
        with pytest.raises(ValueError):
            with errors.count_exceptions(kind="x"):
                raise ValueError("boom")  # must re-raise, not swallow
        assert errors.value(kind="x") == 1

    def test_gauge_set_max_is_a_high_water_mark(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "test")
        gauge.set_max(3, q="a")
        gauge.set_max(7, q="a")
        gauge.set_max(5, q="a")
        assert gauge.value(q="a") == 7


class TestThreadSafety:
    """Satellite: concurrent scrapes during active instrument traffic."""

    def test_concurrent_counter_increments_do_not_drop(self):
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("c_total", "test")

        def work():
            for _ in range(2000):
                counter.inc(worker="w")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value(worker="w") == 16000

    def test_scrapes_stay_consistent_during_active_kernel_runs(self, rng, schedule_caches):
        """expose_text()/snapshot() must never crash or emit torn lines while
        profiled kernel runs are feeding the same registry from other
        threads (the live /metrics-under-load regime)."""
        import threading

        from repro.observability.kernelprof import KernelProfiler
        from repro.schedule import compile_schedule
        from repro.staticcheck import emit_schedule
        from repro.graphs import path_graph

        registry = MetricsRegistry()
        profiler = KernelProfiler(registry=registry)
        kernel = compile_schedule(emit_schedule(path_graph(3), 3, backend="lattice"))
        keys = rng.integers(0, 2**31, size=(16, kernel.num_nodes))
        stop = threading.Event()
        failures: list[BaseException] = []

        def runner():
            try:
                while not stop.is_set():
                    profiler.run(kernel, keys)
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=runner) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                text = registry.expose_text()
                for line in text.splitlines():
                    if not line.startswith("#"):
                        float(line.rsplit(" ", 1)[1])  # every sample parses
                json.dumps(registry.snapshot())  # snapshot stays JSON-safe
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
        assert not failures

    def test_publish_cache_metrics_is_exact_under_contention(self, schedule_caches):
        """Concurrent delta-clamped publishes must not double-count: after
        the dust settles the mirrored counters equal the caches' own."""
        import threading

        from repro.observability.cachestats import all_cache_stats, publish_cache_metrics
        from repro.schedule import compile_schedule
        from repro.staticcheck import emit_schedule
        from repro.graphs import k2, path_graph

        registry = MetricsRegistry()
        barrier = threading.Barrier(6)
        failures: list[BaseException] = []

        def scraper():
            try:
                barrier.wait(timeout=10.0)
                for _ in range(100):
                    publish_cache_metrics(registry)
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        def compiler():
            try:
                barrier.wait(timeout=10.0)
                for r in (2, 3):
                    compile_schedule(emit_schedule(path_graph(3), r, backend="lattice"))
                    compile_schedule(emit_schedule(k2(), r + 2, backend="lattice"))
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [threading.Thread(target=scraper) for _ in range(4)]
        threads += [threading.Thread(target=compiler) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not failures
        publish_cache_metrics(registry)  # final settle
        hits = registry.counter("repro_schedule_cache_hits_total", "")
        misses = registry.counter("repro_schedule_cache_misses_total", "")
        for name, snap in all_cache_stats().items():
            assert hits.value(cache=name) == snap["hits"], name
            assert misses.value(cache=name) == snap["misses"], name


class TestSamplerConcurrency:
    """Satellite: the flight recorder's sampler thread must never torn-read.

    A histogram observation updates count, sum and one bucket; the tsdb
    sampler snapshots all three via ``raw_samples()``.  With worker threads
    hammering a shared histogram while the sampler ticks at full speed,
    every sampled tuple must stay internally consistent (bucket counts sum
    to the observation count) and every per-series sequence monotone.
    """

    def test_sampler_never_tears_a_histogram_under_load(self):
        import threading

        from repro.observability.tsdb import TimeSeriesStore

        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", "test", buckets=(0.01, 0.1, 1.0))
        counter = registry.counter("t_total", "test")
        store = TimeSeriesStore(registry, interval_s=1.0, capacity=4096,
                                clock=lambda: 0.0)
        ticks = 0

        def hammer(worker: int) -> None:
            values = (0.005, 0.05, 0.5, 2.0)
            for i in range(4000):
                hist.observe(values[i % 4], cell="shared")
                counter.inc(cell="shared", worker=str(worker))

        workers = [threading.Thread(target=hammer, args=(w,)) for w in range(4)]
        for t in workers:
            t.start()
        # tick as fast as possible for the whole duration of the hammering
        while any(t.is_alive() for t in workers):
            store.tick(now=float(ticks))
            ticks += 1
        for t in workers:
            t.join()
        store.tick(now=float(ticks))

        key = ("t_seconds", (("cell", "shared"),))
        samples = list(store._series[key].points)
        assert len(samples) >= 2
        prev_count = 0
        for _t, count, _total, bucket_counts in samples:
            # internal consistency: never a torn read across the lock
            assert sum(bucket_counts) == count
            # counts only ever grow
            assert count >= prev_count
            prev_count = count
        # the final sample saw every observation
        assert prev_count == 4 * 4000
        assert store.latest("t_total", cell="shared") is not None
        assert store.increase("t_total", window_s=float(ticks + 1), now=float(ticks)) > 0
