"""Zero-one-principle exhaustion of the full sorting pipeline.

Knuth's zero-one principle: a compare-exchange algorithm that sorts every
0-1 input sorts everything.  The algorithm's building blocks are all
compare-exchange based, so exhausting 0-1 inputs at small sizes is a *proof*
of correctness at those sizes — stronger than random testing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lattice_sort import ProductNetworkSorter
from repro.core.machine_sort import MachineSorter
from repro.core.sorting import multiway_merge_sort
from repro.core.verification import zero_one_sequences
from repro.graphs import k2, path_graph
from repro.orders import lattice_to_sequence


class TestSequenceLevel:
    def test_sort_all_zero_one_16_binary(self):
        """All 2^16 0-1 inputs of the N=2, r=4 sorter."""
        for bits in zero_one_sequences(16):
            assert multiway_merge_sort(bits, 2) == sorted(bits)

    def test_sort_all_zero_one_9_ternary(self):
        for bits in zero_one_sequences(9):
            assert multiway_merge_sort(bits, 3) == sorted(bits)


class TestLatticeLevel:
    def test_k2_r3_exhaustive(self):
        sorter = ProductNetworkSorter.for_factor(k2(), 3)
        for bits in zero_one_sequences(8):
            lattice, _ = sorter.sort_sequence(np.array(bits))
            assert np.array_equal(lattice_to_sequence(lattice), np.sort(np.array(bits)))

    @pytest.mark.slow
    def test_k2_r4_exhaustive(self):
        sorter = ProductNetworkSorter.for_factor(k2(), 4)
        for bits in zero_one_sequences(16):
            lattice, _ = sorter.sort_sequence(np.array(bits))
            assert np.array_equal(lattice_to_sequence(lattice), np.sort(np.array(bits)))

    def test_path3_r2_exhaustive(self):
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 2)
        for bits in zero_one_sequences(9):
            lattice, _ = sorter.sort_sequence(np.array(bits))
            assert np.array_equal(lattice_to_sequence(lattice), np.sort(np.array(bits)))


class TestMachineLevel:
    def test_k2_r3_exhaustive(self):
        """Every 0-1 input through the fine-grained hypercube machine."""
        ms = MachineSorter.for_factor(k2(), 3)
        for bits in zero_one_sequences(8):
            machine, _ = ms.sort(np.array(bits))
            assert np.array_equal(
                lattice_to_sequence(machine.lattice()), np.sort(np.array(bits))
            )

    def test_path3_r2_exhaustive(self):
        ms = MachineSorter.for_factor(path_graph(3), 2)
        for bits in zero_one_sequences(9):
            machine, _ = ms.sort(np.array(bits))
            assert np.array_equal(
                lattice_to_sequence(machine.lattice()), np.sort(np.array(bits))
            )
