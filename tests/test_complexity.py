"""Tests for the closed-form complexity module (Lemma 3 / Theorem 1 / §5)."""

from __future__ import annotations

import pytest

from repro.analysis.complexity import (
    corollary_bound,
    grid_sort_rounds,
    hypercube_sort_rounds,
    merge_rounds,
    merge_routing_calls,
    merge_s2_calls,
    network_prediction,
    sort_rounds,
    sort_routing_calls,
    sort_s2_calls,
    torus_sort_rounds,
)
from repro.graphs import (
    complete_binary_tree,
    cycle_graph,
    de_bruijn_graph,
    k2,
    path_graph,
)


class TestLemma3:
    def test_base_case(self):
        assert merge_rounds(2, s2=10, routing=3) == 10  # M_2 = S_2

    def test_recurrence(self):
        """M_k = M_{k-1} + 2(S_2 + R)."""
        for k in range(3, 10):
            assert merge_rounds(k, 7, 2) == merge_rounds(k - 1, 7, 2) + 2 * (7 + 2)

    def test_call_counts(self):
        assert merge_s2_calls(2) == 1 and merge_routing_calls(2) == 0
        assert merge_s2_calls(5) == 7 and merge_routing_calls(5) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            merge_rounds(1, 1, 1)


class TestTheorem1:
    def test_equals_sum_of_merges(self):
        """S_r = S_2 + sum_{k=3..r} M_k — the proof's derivation."""
        s2, routing = 11, 4
        for r in range(2, 10):
            total = s2 + sum(merge_rounds(k, s2, routing) for k in range(3, r + 1))
            assert sort_rounds(r, s2, routing) == total

    def test_call_counts_consistent(self):
        for r in range(2, 10):
            assert sort_s2_calls(r) == 1 + sum(merge_s2_calls(k) for k in range(3, r + 1))
            assert sort_routing_calls(r) == sum(merge_routing_calls(k) for k in range(3, r + 1))

    def test_bounded_by_2r2s2(self):
        """Since S_2 >= R: S_r < 2 (r-1)^2 S_2 (the theorem's closing line)."""
        for r in range(2, 12):
            for s2 in (5, 20):
                for routing in range(1, s2 + 1):
                    assert sort_rounds(r, s2, routing) < 2 * (r - 1) ** 2 * s2

    def test_validation(self):
        with pytest.raises(ValueError):
            sort_rounds(1, 1, 1)


class TestSection5Formulas:
    def test_hypercube(self):
        """§5.3: 3(r-1)^2 + (r-1)(r-2)."""
        assert hypercube_sort_rounds(2) == 3
        assert hypercube_sort_rounds(3) == 14
        assert hypercube_sort_rounds(10) == 3 * 81 + 72

    def test_grid_leading_term(self):
        """§5.1: at most 4(r-1)^2 N + o(r^2 N)."""
        for n in (8, 32, 128):
            for r in (2, 3, 5):
                exact = grid_sort_rounds(n, r, include_lower_order=False)
                assert exact == (r - 1) ** 2 * 3 * n + (r - 1) * (r - 2) * (n - 1)
                assert exact <= 4 * (r - 1) ** 2 * n

    def test_torus_leading_term(self):
        """Corollary: at most 3(r-1)^2 N + o(r^2 N)."""
        for n in (8, 32, 128):
            for r in (2, 3, 5):
                exact = torus_sort_rounds(n, r, include_lower_order=False)
                assert exact <= 3 * (r - 1) ** 2 * n

    def test_corollary_dominates_any_measured_factor(self):
        """18(r-1)^2 N + o(r^2 N) upper-bounds the emulation-based
        predictions for non-Hamiltonian factors.  The o(r^2 N) slack is made
        concrete: the slowdown-scaled sublinear term of the Kunde sorter
        plus the routing contribution (R <= N)."""
        from repro.sorters2d.analytic import sublinear_term

        for r in (2, 3, 4):
            g = complete_binary_tree(2)
            pred = network_prediction(g, r)
            slack = 6 * (r - 1) ** 2 * sublinear_term(g.n) + (r - 1) * (r - 2) * g.n
            assert pred.total_rounds <= corollary_bound(g.n, r) + slack

    def test_corollary_validation(self):
        with pytest.raises(ValueError):
            corollary_bound(2, 1)


class TestNetworkPrediction:
    def test_matches_defaults_of_sorter(self):
        import numpy as np

        from repro.core.lattice_sort import ProductNetworkSorter

        for factor, r in [(path_graph(4), 3), (k2(), 5), (cycle_graph(5), 3), (de_bruijn_graph(3), 2)]:
            pred = network_prediction(factor, r)
            sorter = ProductNetworkSorter.for_factor(factor, r)
            keys = np.arange(sorter.network.num_nodes)[::-1].copy()
            _, ledger = sorter.sort_sequence(keys)
            assert ledger.total_rounds == pred.total_rounds

    def test_asymptotic_labels(self):
        assert "§5.3" in network_prediction(k2(), 3).asymptotic
        assert "§5.5" in network_prediction(de_bruijn_graph(3), 3).asymptotic
        assert "§5.1" in network_prediction(path_graph(4), 3).asymptotic
        assert "emulation" in network_prediction(complete_binary_tree(2), 3).asymptotic
