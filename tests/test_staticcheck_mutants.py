"""Tests for the seeded-fault harness: every mutant class must be caught.

The canonical mutant cells are ``path-n3-r3`` on both backends — the
smallest geometry where all four fault classes are semantically live (on
``n = 2`` cells parts of the clean-up are provably redundant, so dropping
them cannot and should not trip a sound semantic lint).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graphs import k2, path_graph
from repro.staticcheck import (
    MUTANT_CELLS,
    MUTANTS,
    apply_mutant,
    extract_schedule,
    render_mutants,
    run_mutant_harness,
    run_mutants,
)

EXPECTED = {
    "drop_cleanup_sort": "zero-one",
    "skip_transposition": "depth",
    "swap_direction": "zero-one",
    "double_book": "races",
}


def test_mutant_registry_matches_issue_fault_classes():
    assert [m.name for m in MUTANTS] == list(EXPECTED)
    assert {m.name: m.expected_lint for m in MUTANTS} == EXPECTED


@pytest.mark.parametrize("backend", ("lattice", "machine"))
@pytest.mark.parametrize("mutant", list(EXPECTED))
def test_each_mutant_caught_by_its_lint(backend, mutant):
    outcomes = {
        oc.mutant: oc
        for oc in run_mutant_harness(path_graph(3), 3, backend=backend)
    }
    oc = outcomes[mutant]
    assert oc.caught, oc.describe()
    assert oc.expected_lint in oc.failed_lints
    # the mutated schedule's own verification exits 1
    assert oc.report.exit_code == 1


def test_mutants_change_the_schedule_hash():
    base = extract_schedule(path_graph(3), 3, backend="lattice").dag
    hashes = {base.schedule_hash()}
    for mutant in MUTANTS:
        mutated = mutant.apply(base)
        assert mutated.meta["mutant"] == mutant.name
        hashes.add(mutated.schedule_hash())
    # base + 4 distinct mutants
    assert len(hashes) == 5


def test_apply_mutant_by_name_and_unknown():
    base = extract_schedule(path_graph(3), 3, backend="machine").dag
    mutated = apply_mutant(base, "double_book")
    assert mutated.comparator_count == base.comparator_count + 1
    with pytest.raises(ValueError, match="unknown mutant"):
        apply_mutant(base, "nope")


def test_structural_mutants_require_a_merge():
    # r = 2 schedules have no clean-up or transposition to fault
    flat = extract_schedule(k2(), 2, backend="machine").dag
    for name in ("drop_cleanup_sort", "skip_transposition", "swap_direction"):
        with pytest.raises(ValueError, match="r < 3"):
            apply_mutant(flat, name)


def test_drop_cleanup_sort_removes_final_block_sorts():
    base = extract_schedule(path_graph(3), 3, backend="lattice").dag
    mutated = apply_mutant(base, "drop_cleanup_sort")
    assert len(mutated.phases) == len(base.phases) - 1
    assert all(p.leaf != "final-block-sorts" for p in mutated.phases)
    # reindexing keeps phases/rounds consistent
    assert all(rd.phase < len(mutated.phases) for rd in mutated.rounds)
    assert [p.index for p in mutated.phases] == list(range(len(mutated.phases)))


def test_swap_direction_flips_exactly_one_comparator():
    base = extract_schedule(path_graph(3), 3, backend="lattice").dag
    mutated = apply_mutant(base, "swap_direction")
    base_ops = [op for rd in base.rounds for op in rd.comparators]
    mut_ops = [op for rd in mutated.rounds for op in rd.comparators]
    flipped = [(a, b) for a, b in zip(base_ops, mut_ops) if a != b]
    assert len(flipped) == 1
    (orig, swap), = flipped
    assert (orig.lo, orig.hi) == (swap.hi, swap.lo)


def test_run_mutants_default_cells():
    outcomes = run_mutants()
    assert set(outcomes) == {c.key for c in MUTANT_CELLS}
    assert all(oc.caught for ocs in outcomes.values() for oc in ocs)
    text = render_mutants(outcomes)
    assert "caught 8/8" in text


def test_cli_check_mutants(capsys):
    assert main(["check", "--races", "--cell", "k2-n2-r2-machine", "--mutants"]) == 0
    out = capsys.readouterr().out
    assert "CAUGHT by zero-one" in out
    assert "CAUGHT by depth" in out
    assert "CAUGHT by races" in out
    assert "caught 8/8" in out


def test_cli_check_mutants_json(capsys):
    assert main(["check", "--depth", "--cell", "path-n3-r2-lattice",
                 "--mutants", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    per_cell = payload["mutants"]
    assert set(per_cell) == {c.key for c in MUTANT_CELLS}
    for outcomes in per_cell.values():
        assert len(outcomes) == 4
        for oc in outcomes:
            assert oc["caught"]
            assert oc["verify_exit_code"] == 1
            assert oc["expected_lint"] in oc["failed_lints"]
