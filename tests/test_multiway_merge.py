"""Tests for the sequence-level multiway merge (paper §3.1, Figs. 6-11)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import CallbackSubscriber, EventBus

from repro.core.multiway_merge import (
    clean_dirty_area,
    distribute,
    interleave,
    multiway_merge,
)
from repro.core.verification import (
    max_displacement,
    measure_dirty_area,
    zero_one_merge_inputs,
)


class TestDistribute:
    def test_paper_example(self):
        """§3.1 Step 1 example: A_u = 1..9, N = 3."""
        assert distribute(list(range(1, 10)), 3) == [[1, 6, 7], [2, 5, 8], [3, 4, 9]]

    def test_positions_formula(self):
        """B_v gets positions v, 2N-v-1, 2N+v, ... of A."""
        n, m = 4, 16
        cols = distribute(list(range(m)), n)
        for v in range(n):
            expected = [p for p in range(m) if p % (2 * n) in (v, 2 * n - 1 - v)]
            assert cols[v] == expected

    def test_subsequences_stay_sorted(self):
        seq = sorted([7, 1, 3, 3, 9, 2, 5, 8, 4])
        for col in distribute(seq, 3):
            assert col == sorted(col)

    def test_validates_divisibility(self):
        with pytest.raises(ValueError):
            distribute([1, 2, 3, 4], 3)


class TestInterleave:
    def test_round_robin(self):
        cols = [[0, 3], [1, 4], [2, 5]]
        assert interleave(cols, 3) == [0, 1, 2, 3, 4, 5]

    def test_validates(self):
        with pytest.raises(ValueError):
            interleave([[1], [2]], 3)
        with pytest.raises(ValueError):
            interleave([[1], [2, 3], [4]], 3)

    def test_inverse_of_distribute_columns(self):
        """Interleaving the columns of a snake-arranged block recovers a
        permutation of the original (same multiset, structured order)."""
        seq = list(range(12))
        cols = distribute(seq, 3)
        mixed = interleave(cols, 3)
        assert sorted(mixed) == seq


class TestCleanDirtyArea:
    def test_cleans_single_block_dirt(self):
        d = [0, 0, 1, 0] + [1] * 4  # dirty inside block 0 (N=2)
        assert clean_dirty_area(d, 2) == sorted(d)

    def test_cleans_straddling_dirt(self):
        # dirty area split across two adjacent blocks
        d = [0, 0, 0, 1, 0, 1, 1, 1]
        assert clean_dirty_area(d, 2) == sorted(d)

    def test_leaves_sorted_input_sorted(self):
        d = list(range(18))
        assert clean_dirty_area(d, 3) == d

    def test_validates_length(self):
        with pytest.raises(ValueError):
            clean_dirty_area([1, 2, 3], 2)

    def test_wide_dirt_beyond_bound_may_survive(self):
        """The clean-up only guarantees repair of <= N^2 windows; a fully
        shuffled input demonstrates the precondition matters."""
        d = [7, 0, 3, 1, 6, 2, 5, 4, 7, 0, 3, 1, 6, 2, 5, 4]
        out = clean_dirty_area(d, 2)
        assert sorted(out) == sorted(d)  # conserved even when not sorted


class TestMergeValidation:
    def test_rejects_short_sequences(self):
        with pytest.raises(ValueError):
            multiway_merge([[1, 2], [3, 4]])  # m = N < N^2

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            multiway_merge([[1, 2, 3, 4], [1, 2, 3]])

    def test_rejects_non_power_length(self):
        with pytest.raises(ValueError):
            multiway_merge([[1] * 6, [2] * 6])

    def test_rejects_single_sequence(self):
        with pytest.raises(ValueError):
            multiway_merge([[1, 2, 3, 4]])

    def test_validate_flag_catches_unsorted(self):
        with pytest.raises(ValueError):
            multiway_merge([[2, 1, 3, 4], [1, 2, 3, 4]], validate=True)


class TestMergeCorrectness:
    @pytest.mark.parametrize("n,k", [(2, 3), (2, 4), (2, 5), (3, 3), (3, 4), (4, 3), (5, 3)])
    def test_random_inputs(self, n, k):
        import random

        rng = random.Random(n * 100 + k)
        m = n ** (k - 1)
        for _ in range(10):
            seqs = [sorted(rng.randrange(60) for _ in range(m)) for _ in range(n)]
            out = multiway_merge(seqs, validate=True)
            assert out == sorted(x for s in seqs for x in s)

    @pytest.mark.parametrize("n", [2, 3])
    def test_exhaustive_zero_one_k3(self, n):
        """Zero-one principle, exhausted: every 0-1 instance at k = 3."""
        m = n * n
        for seqs in zero_one_merge_inputs(n, m):
            assert multiway_merge(seqs) == sorted(x for s in seqs for x in s)

    @pytest.mark.slow
    def test_exhaustive_zero_one_k4_binary(self):
        for seqs in zero_one_merge_inputs(2, 8):
            assert multiway_merge(seqs) == sorted(x for s in seqs for x in s)

    def test_duplicates_heavy(self):
        seqs = [[1] * 9, [1] * 9, [0] * 4 + [1] * 5]
        assert multiway_merge(seqs) == sorted(x for s in seqs for x in s)

    def test_stability_of_multiset(self):
        seqs = [sorted([3, 1, 4, 1, 5, 9, 2, 6, 5]), sorted([3, 5, 8, 9, 7, 9, 3, 2, 3]),
                sorted([8, 4, 6, 2, 6, 4, 3, 3, 8])]
        out = multiway_merge(seqs)
        assert out == sorted(x for s in seqs for x in s)

    @given(st.lists(st.integers(0, 9), min_size=27, max_size=27))
    @settings(max_examples=40)
    def test_property_random_keys(self, flat):
        seqs = [sorted(flat[i * 9 : (i + 1) * 9]) for i in range(3)]
        assert multiway_merge(seqs) == sorted(flat)


def _capture_bus(cb) -> EventBus:
    bus = EventBus()
    bus.subscribe(CallbackSubscriber(cb))
    return bus


class TestLemma1:
    @pytest.mark.parametrize("n", [2, 3])
    def test_dirty_area_bounded_exhaustive(self, n):
        """Lemma 1: after Step 3 the dirty window never exceeds N^2 —
        exhausted over all 0-1 instances."""
        worst = 0
        for seqs in zero_one_merge_inputs(n, n * n):
            captured = {}
            multiway_merge(seqs, tracer=_capture_bus(lambda e, p: captured.update({e: p})))
            dirty = measure_dirty_area(captured["step3_D"])
            worst = max(worst, dirty)
            assert dirty <= n * n
        assert worst == n * n  # the bound is tight

    def test_displacement_bounded_random_keys(self):
        """§4 Step 3: "every key is within a distance of N^2 from its final
        position" — the general-key face of Lemma 1."""
        import random

        rng = random.Random(6)
        n = 4
        for _ in range(25):
            seqs = [sorted(rng.randrange(30) for _ in range(16)) for _ in range(n)]
            captured = {}
            multiway_merge(seqs, tracer=_capture_bus(lambda e, p: captured.update({e: p})))
            assert max_displacement(captured["step3_D"]) <= n * n


class TestTraceEvents:
    def test_all_events_fire(self):
        events = []
        multiway_merge(
            [sorted(range(0, 9)), sorted(range(4, 13)), sorted(range(2, 11))],
            tracer=_capture_bus(lambda e, p: events.append(e)),
        )
        assert events == [
            "step1_B",
            "step2_C",
            "step3_D",
            "step4_F",
            "step4_G",
            "step4_H",
            "step4_I",
            "result",
        ]

    def test_step1_payload_shape(self):
        captured = {}
        multiway_merge(
            [list(range(9)), list(range(9)), list(range(9))],
            tracer=_capture_bus(lambda e, p: captured.update({e: p})),
        )
        b = captured["step1_B"]
        assert len(b) == 3 and all(len(row) == 3 for row in b)
        assert all(len(col) == 3 for row in b for col in row)
        c = captured["step2_C"]
        assert len(c) == 3 and all(len(col) == 9 for col in c)
