"""Tests for the topology observatory: per-link accounting, imbalance
indices, heatmap/SVG rendering and the ``repro topo`` CLI."""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from collections import Counter

import numpy as np
import pytest

from repro.cli import main
from repro.core.machine_sort import MachineSorter
from repro.graphs import complete_binary_tree, k2, path_graph, petersen_graph
from repro.machine.stats import TrafficRecorder
from repro.observability import (
    LinkObservatory,
    MachineTimeline,
    MetricsRegistry,
    MetricsSubscriber,
    Tracer,
    TrafficSubscriber,
    phase_key,
)
from repro.observability.heatmap import (
    phase_dimension_matrix,
    render_imbalance_table,
    render_topology_heatmap,
    topology_html,
    topology_json,
    topology_svg,
)
from repro.observability.topology import UNATTRIBUTED, gini
from repro.viz import heat_shade, render_heatmap


def observed_sort(factor, r, seed=0, with_recorder=False):
    """Run one machine sort under full telemetry; return the consumers."""
    tracer = Tracer()
    sorter = MachineSorter.for_factor(factor, r)
    obs = LinkObservatory(sorter.network, bus=tracer.bus)
    recorder = None
    if with_recorder:
        recorder = TrafficRecorder(sorter.network)
        tracer.bus.subscribe(TrafficSubscriber(recorder))
    timeline = MachineTimeline(sorter.network, bus=tracer.bus)
    keys = np.random.default_rng(seed).integers(0, 2**31, size=sorter.network.num_nodes)
    sorter.sort(keys, tracer=tracer, timeline=timeline)
    return obs, recorder, sorter.network


class TestPhaseKey:
    def test_bare_name_without_dim(self):
        assert phase_key("cleanup") == "cleanup"

    def test_dim_suffix(self):
        assert phase_key("merge", 3) == "merge[d3]"

    def test_phase_summary_and_observatory_agree(self):
        # the satellite requirement: both consumers key phases identically
        from repro.observability import phase_summary

        obs, _, _ = observed_sort(k2(), 3)
        tracer = Tracer()
        sorter = MachineSorter.for_factor(k2(), 3)
        keys = np.random.default_rng(0).integers(0, 2**31, size=8)
        sorter.sort(keys, tracer=tracer)
        table = phase_summary(tracer)
        for phase in obs.phase_edge_loads():
            assert phase in table


class TestEdgeAccounting:
    def test_hypercube_totals_match_recorder_exactly(self):
        # acceptance criterion: the 3-D hypercube cell, exact equality
        obs, recorder, _ = observed_sort(k2(), 3, with_recorder=True)
        stats = recorder.stats()
        assert obs.total_traversals == stats.link_traversals
        assert obs.total_traversals > 0
        # adjacent-only network: every pair is two directed traversals
        assert stats.routed_pairs == 0
        assert obs.total_traversals == 2 * stats.adjacent_pairs

    def test_routed_network_totals_match_recorder_exactly(self):
        factor = complete_binary_tree(2).canonically_labelled()
        obs, recorder, _ = observed_sort(factor, 3, with_recorder=True)
        stats = recorder.stats()
        assert stats.routed_pairs > 0
        assert stats.routed_link_traversals > 0
        assert obs.total_traversals == stats.link_traversals

    def test_per_phase_histograms_sum_to_global(self):
        factor = complete_binary_tree(2).canonically_labelled()
        obs, _, _ = observed_sort(factor, 3)
        summed = Counter()
        for loads in obs.phase_edge_loads().values():
            summed.update(loads)
        assert dict(summed) == obs.edge_loads()

    def test_every_edge_is_a_network_wire(self):
        obs, _, network = observed_sort(k2(), 3)
        for u, v in obs.edge_loads():
            assert network.is_edge(network.label_of(u), network.label_of(v))

    def test_dimension_split_sums_to_total(self):
        obs, _, _ = observed_sort(path_graph(3), 3)
        per_dim = obs.dimension_indices()
        assert set(per_dim) == {1, 2, 3}
        assert sum(ix.total_traversals for ix in per_dim.values()) == obs.total_traversals

    def test_untraced_steps_fall_into_unattributed_bucket(self):
        sorter = MachineSorter.for_factor(k2(), 2)
        from repro.observability import EventBus

        bus = EventBus()
        obs = LinkObservatory(sorter.network, bus=bus)
        keys = np.random.default_rng(0).integers(0, 2**31, size=4)
        # no tracer on the bus: steps arrive with no enclosing span
        sorter.sort(keys, timeline=MachineTimeline(sorter.network, bus=bus))
        assert list(obs.phase_edge_loads()) == [UNATTRIBUTED]

    def test_reset_forgets_everything(self):
        obs, _, _ = observed_sort(k2(), 2)
        assert obs.total_traversals > 0
        obs.reset()
        assert obs.total_traversals == 0
        assert obs.steps == 0
        assert obs.edge_loads() == {}


class TestBufferDepth:
    def test_peak_buffer_depth_small_on_canonical_factors(self):
        # acceptance criterion: the routing.py dilation claim, measured —
        # canonically-labelled factors route over <= 3-hop paths, so
        # store-and-forward buffers stay within depth 3
        for factor, r in [
            (complete_binary_tree(2).canonically_labelled(), 3),
            (petersen_graph().canonically_labelled(), 2),
        ]:
            obs, recorder, _ = observed_sort(factor, r, with_recorder=True)
            assert obs.peak_buffer_depth <= 3
            assert recorder.stats().peak_buffer_depth == obs.peak_buffer_depth

    def test_adjacent_only_network_never_buffers(self):
        obs, _, _ = observed_sort(k2(), 3)
        assert obs.peak_buffer_depth == 0
        assert obs.round_occupancy() == ()

    def test_phase_indices_carry_buffer_depth(self):
        factor = complete_binary_tree(2).canonically_labelled()
        obs, _, _ = observed_sort(factor, 3)
        depths = [ix.peak_buffer_depth for ix in obs.phase_indices().values()]
        assert max(depths) == obs.peak_buffer_depth > 0


class TestNodeUtilisation:
    def test_busy_counts_bounded_by_steps(self):
        obs, _, network = observed_sort(path_graph(3), 3)
        busy = obs.node_busy_steps()
        assert all(0 < b <= obs.steps for b in busy.values())
        util = obs.node_utilisation()
        assert 0.0 < util["mean_busy_fraction"] <= 1.0
        assert util["idle_nodes"] == network.num_nodes - len(busy)


class TestGini:
    def test_uniform_load_is_zero(self):
        assert gini([5, 5, 5, 5], 4) == pytest.approx(0.0)

    def test_single_hot_wire_approaches_one(self):
        assert gini([100], 100) == pytest.approx(0.99)

    def test_empty_and_zero(self):
        assert gini([], 10) == 0.0
        assert gini([0, 0], 2) == 0.0
        assert gini([1], 0) == 0.0


class TestCongestionIndices:
    def test_structural_wire_counts(self):
        obs, _, network = observed_sort(path_graph(3), 3)
        idx = obs.congestion()
        assert idx.directed_edges == 2 * network.num_edges
        per_dim = obs.dimension_indices()
        for d in (1, 2, 3):
            assert per_dim[d].directed_edges == (
                2 * len(network.factor.edges) * network.n ** (network.r - 1)
            )

    def test_mean_and_max_consistency(self):
        obs, _, _ = observed_sort(k2(), 3)
        idx = obs.congestion()
        assert idx.max_load >= idx.mean_load > 0
        assert idx.total_traversals == pytest.approx(idx.mean_load * idx.directed_edges)
        assert 0.0 <= idx.gini < 1.0

    def test_snapshot_is_json_safe(self):
        obs, _, _ = observed_sort(k2(), 3)
        snap = json.loads(json.dumps(obs.snapshot()))
        assert snap["total_traversals"] == obs.total_traversals
        assert set(snap["per_dimension"]) == {"1", "2", "3"}
        assert snap["per_phase"]


class TestRendering:
    def test_render_heatmap_shape_validation(self):
        with pytest.raises(ValueError):
            render_heatmap([[1, 2]], ["a", "b"], ["x", "y"])
        with pytest.raises(ValueError):
            render_heatmap([[1, 2]], ["a"], ["x"])

    def test_heat_shade_ramp(self):
        assert heat_shade(0, 10) == " "
        assert heat_shade(10, 10) == "█"
        assert heat_shade(5, 0) == " "

    def test_heatmap_has_total_row_and_scale(self):
        obs, _, _ = observed_sort(k2(), 3)
        text = render_topology_heatmap(obs)
        assert "TOTAL" in text
        assert "scale:" in text
        assert "d3" in text

    def test_matrix_total_row_sums_columns(self):
        obs, _, _ = observed_sort(path_graph(3), 3)
        rows, cols, matrix = phase_dimension_matrix(obs)
        assert rows[-1] == "TOTAL"
        for c in range(len(cols)):
            assert matrix[-1][c] == sum(row[c] for row in matrix[:-1])
        assert sum(matrix[-1]) == obs.total_traversals

    def test_imbalance_table_lists_all_scopes(self):
        obs, _, _ = observed_sort(k2(), 3)
        table = render_imbalance_table(obs)
        assert "network" in table
        assert "dim 1" in table and "dim 3" in table
        assert "gini" in table

    def test_topology_json_round_trips(self):
        obs, _, _ = observed_sort(k2(), 2)
        doc = json.loads(topology_json(obs))
        assert doc["steps"] == obs.steps

    def test_svg_is_well_formed_xml(self):
        obs, _, _ = observed_sort(k2(), 3)
        root = ET.fromstring(topology_svg(obs))
        assert root.tag.endswith("svg")
        texts = [e.text for e in root.iter() if e.tag.endswith("text")]
        assert any("TOTAL" in (t or "") for t in texts)

    def test_html_wraps_the_svg(self):
        obs, _, _ = observed_sort(k2(), 2)
        html = topology_html(obs)
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "<?xml" not in html


class TestMetricsInstruments:
    def test_link_traversal_counter_matches_observatory(self):
        factor = complete_binary_tree(2).canonically_labelled()
        tracer = Tracer()
        sorter = MachineSorter.for_factor(factor, 3)
        obs = LinkObservatory(sorter.network, bus=tracer.bus)
        registry = MetricsRegistry()
        tracer.bus.subscribe(MetricsSubscriber(registry))
        timeline = MachineTimeline(sorter.network, bus=tracer.bus)
        keys = np.random.default_rng(0).integers(0, 2**31, size=sorter.network.num_nodes)
        sorter.sort(keys, tracer=tracer, timeline=timeline)
        counter = registry.counter("repro_link_traversals_total")
        total = counter.value(kind="adjacent") + counter.value(kind="routed")
        assert total == obs.total_traversals
        assert registry.gauge("repro_peak_buffer_depth").value() == obs.peak_buffer_depth
        occupancy = registry.histogram("repro_buffer_occupancy").snapshot_series()
        assert occupancy["count"] == len(obs.round_occupancy())


class TestCli:
    def test_topo_heatmap_to_stdout(self, capsys):
        assert main(["topo", "--factor", "k2", "--r", "3", "--heatmap"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "scale:" in out

    def test_topo_imbalance_to_stdout(self, capsys):
        assert main(["topo", "--factor", "k2", "--r", "3", "--imbalance"]) == 0
        out = capsys.readouterr().out
        assert "gini" in out and "network" in out

    def test_topo_default_shows_both(self, capsys):
        assert main(["topo", "--factor", "k2", "--r", "2"]) == 0
        out = capsys.readouterr().out
        assert "scale:" in out and "gini" in out

    def test_topo_export_svg(self, tmp_path, capsys):
        path = tmp_path / "topo.svg"
        assert main(
            ["topo", "--factor", "k2", "--r", "3", "--export", "svg", "--out", str(path)]
        ) == 0
        tree = ET.parse(path)  # raises on malformed XML
        assert tree.getroot().tag.endswith("svg")

    def test_topo_export_json(self, tmp_path):
        path = tmp_path / "topo.json"
        assert main(
            ["topo", "--factor", "path", "--n", "3", "--r", "2",
             "--export", "json", "--out", str(path)]
        ) == 0
        doc = json.loads(path.read_text())
        assert doc["total_traversals"] > 0
