"""Tests for the §3.3 sequence-level sorting driver."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiway_merge import default_sort2
from repro.core.sorting import multiway_merge_sort, required_order


class TestRequiredOrder:
    def test_exact_powers(self):
        assert required_order(8, 2) == 3
        assert required_order(81, 3) == 4
        assert required_order(2, 2) == 1

    def test_rejects_non_powers(self):
        with pytest.raises(ValueError):
            required_order(10, 3)
        with pytest.raises(ValueError):
            required_order(0, 2)


class TestSortDriver:
    @pytest.mark.parametrize("n,r", [(2, 2), (2, 3), (2, 5), (3, 2), (3, 3), (3, 4), (4, 3), (5, 2)])
    def test_sorts_random(self, n, r):
        rng = random.Random(n * 10 + r)
        keys = [rng.randrange(100) for _ in range(n**r)]
        assert multiway_merge_sort(keys, n) == sorted(keys)

    def test_rejects_r1(self):
        with pytest.raises(ValueError):
            multiway_merge_sort([3, 1], 2)

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            multiway_merge_sort(list(range(10)), 3)

    def test_on_round_observer(self):
        """After round k, sequences have length N^k and each is sorted."""
        rng = random.Random(0)
        keys = [rng.randrange(50) for _ in range(81)]
        seen: list[tuple[int, int, bool]] = []

        def observe(k, sequences):
            all_sorted = all(s == sorted(s) for s in sequences)
            seen.append((k, len(sequences), all_sorted))

        multiway_merge_sort(keys, 3, on_round=observe)
        assert seen == [(2, 9, True), (3, 3, True), (4, 1, True)]

    def test_custom_sort2_is_used(self):
        calls = []

        def probe_sort2(block):
            calls.append(len(block))
            return default_sort2(block)

        rng = random.Random(1)
        keys = [rng.randrange(30) for _ in range(27)]
        assert multiway_merge_sort(keys, 3, sort2=probe_sort2) == sorted(keys)
        assert all(size == 9 for size in calls)  # only ever sorts N^2 keys
        assert len(calls) >= 3

    @given(st.lists(st.integers(-50, 50), min_size=16, max_size=16))
    @settings(max_examples=40)
    def test_property_binary_radix(self, keys):
        assert multiway_merge_sort(keys, 2) == sorted(keys)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=27, max_size=27))
    @settings(max_examples=25)
    def test_property_floats(self, keys):
        assert multiway_merge_sort(keys, 3) == sorted(keys)

    def test_all_equal_keys(self):
        assert multiway_merge_sort([7] * 64, 4) == [7] * 64

    def test_reverse_sorted(self):
        keys = list(range(32, 0, -1))
        assert multiway_merge_sort(keys, 2) == sorted(keys)
