"""Tests for transposition-sort and sequence shearsort baselines."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.shearsort_seq import shearsort, snake_of_mesh
from repro.baselines.transposition import odd_even_transposition_sort
from repro.core.verification import zero_one_sequences


class TestTranspositionSort:
    @given(st.lists(st.integers(-20, 20), max_size=30))
    @settings(max_examples=50)
    def test_property_sorts(self, keys):
        out, stats = odd_even_transposition_sort(keys)
        assert out == sorted(keys)
        assert stats.phases == len(keys)

    def test_zero_one_exhaustive(self):
        for bits in zero_one_sequences(10):
            out, _ = odd_even_transposition_sort(bits)
            assert out == sorted(bits)

    def test_truncated_phases_fail_on_reversal(self):
        """n phases are necessary in the worst case: n-2 don't suffice for
        the reversal permutation."""
        keys = list(range(9, -1, -1))
        out, _ = odd_even_transposition_sort(keys, phases=5)
        assert out != sorted(keys)

    def test_convergence_probe(self):
        out, stats = odd_even_transposition_sort([1, 2, 3, 4])
        assert stats.converged_after == 0
        out, stats = odd_even_transposition_sort([2, 1, 3, 4])
        assert stats.converged_after == 1

    def test_comparison_count(self):
        _, stats = odd_even_transposition_sort(list(range(6)))
        # phases alternate 3 and 2 comparisons: total 6*(3+2)/2
        assert stats.comparisons == 15


class TestShearsort:
    @pytest.mark.parametrize("h,w", [(2, 2), (4, 4), (3, 5), (8, 3), (5, 5)])
    def test_random(self, h, w):
        rng = random.Random(h * 10 + w)
        for _ in range(10):
            keys = [rng.randrange(100) for _ in range(h * w)]
            out, stats = shearsort(keys, h, w)
            assert out == sorted(keys)

    def test_zero_one_exhaustive_4x3(self):
        for bits in zero_one_sequences(12):
            out, _ = shearsort(bits, 4, 3)
            assert out == sorted(bits)

    def test_phase_counts(self):
        _, stats = shearsort(list(range(16)), 4, 4)
        assert stats.row_phases == 3  # ceil(lg 4) + 1
        assert stats.column_phases == 2

    def test_snake_reading(self):
        mesh = [[1, 2, 3], [6, 5, 4], [7, 8, 9]]
        assert snake_of_mesh(mesh) == [1, 2, 3, 4, 5, 6, 7, 8, 9]

    def test_validation(self):
        with pytest.raises(ValueError):
            shearsort([1, 2, 3], 2, 2)
