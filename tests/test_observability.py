"""Tests for the unified tracing & telemetry layer.

The headline assertion: a full ``r``-dimensional sort's span tree contains
exactly ``(r-1)**2`` spans of kind ``s2`` and ``(r-1)(r-2)`` spans of kind
``routing`` — Theorem 1 verified from telemetry alone, on both backends,
independently of the ledger's hand-rolled counters.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.lattice_sort import ProductNetworkSorter
from repro.core.machine_sort import MachineSorter
from repro.core.multiway_merge import multiway_merge
from repro.core.sorting import multiway_merge_sort
from repro.graphs import ProductGraph, k2, path_graph
from repro.machine.machine import NetworkMachine
from repro.machine.metrics import CostLedger
from repro.machine.stats import TrafficRecorder
from repro.observability import (
    NULL_TRACER,
    CallbackSubscriber,
    EventBus,
    LedgerSubscriber,
    MachineTimeline,
    Tracer,
    TrafficSubscriber,
    chrome_trace_json,
    coerce_tracer,
    phase_summary,
    point_event,
    spans_to_jsonl,
    timeline_to_jsonl,
    to_chrome_trace,
)
from repro.orders import lattice_to_sequence


class TestTracer:
    def test_span_tree_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", dim=3):
            with tracer.span("inner-a", kind="s2", rounds=5):
                pass
            with tracer.span("inner-b", kind="routing", rounds=2):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner-a", "inner-b"]
        assert root.children[0].parent_id == root.span_id
        assert root.total_rounds() == 7
        assert tracer.count(kind="s2") == 1
        assert tracer.find("inner-b")[0].rounds == 2

    def test_set_updates_attrs_mid_span(self):
        tracer = Tracer()
        with tracer.span("phase") as sp:
            sp.set(rounds=9, blocks=4)
        assert tracer.roots[0].rounds == 9
        assert tracer.roots[0].attrs["blocks"] == 4

    def test_wall_time_monotone(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        span = tracer.roots[0]
        assert span.end >= span.start
        assert span.duration >= 0.0

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.roots[0].end is not None
        assert tracer.roots[0].attrs.get("error") is True
        assert tracer.current is None

    def test_bus_sees_start_and_end_events(self):
        tracer = Tracer()
        seen = []
        tracer.bus.subscribe(seen.append)
        with tracer.span("phase", kind="s2") as sp:
            sp.set(rounds=3)
        kinds = [(e.kind, e.name) for e in seen]
        assert kinds == [("span_start", "phase"), ("span_end", "phase")]
        # span_end carries the final attributes, set() included
        assert seen[1].attrs["rounds"] == 3

    def test_point_event_parented_under_current_span(self):
        tracer = Tracer()
        seen = []
        tracer.bus.subscribe(seen.append)
        with tracer.span("phase"):
            tracer.event("probe", payload=[1, 2])
        points = [e for e in seen if e.kind == "point"]
        assert len(points) == 1
        assert points[0].parent_id == tracer.roots[0].span_id
        assert points[0].attrs["payload"] == [1, 2]


class TestNullTracerFastPath:
    def test_disabled_flag(self):
        assert NULL_TRACER.disabled is True
        assert Tracer().disabled is False
        assert coerce_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert coerce_tracer(tracer) is tracer

    def test_span_is_shared_noop_singleton(self):
        # zero allocation per span: every call hands back the same object
        a = NULL_TRACER.span("anything", rounds=1)
        b = NULL_TRACER.span("else")
        assert a is b
        with a as entered:
            assert entered.set(rounds=5) is entered

    def test_collects_nothing(self):
        with NULL_TRACER.span("x"):
            NULL_TRACER.event("y", payload=1)
        assert list(NULL_TRACER.iter_spans()) == []
        assert NULL_TRACER.count() == 0
        assert NULL_TRACER.total_rounds() == 0

    def test_untraced_sort_records_nothing(self, rng):
        # tracer=None must leave no telemetry residue anywhere
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 3)
        keys = rng.integers(0, 100, size=27)
        lattice, ledger = sorter.sort_sequence(keys)  # no tracer argument
        assert np.all(np.diff(lattice_to_sequence(lattice)) >= 0)
        assert list(NULL_TRACER.iter_spans()) == []


THEOREM1_CASES = [
    ("lattice", 3),
    ("lattice", 4),
    ("machine", 3),
    ("machine", 4),
]


class TestTheorem1FromTelemetry:
    """``(r-1)**2`` S₂ spans and ``(r-1)(r-2)`` routing spans, per backend."""

    @pytest.mark.parametrize("backend,r", THEOREM1_CASES)
    def test_span_counts_match_theorem1(self, backend, r, rng):
        tracer = Tracer()
        if backend == "lattice":
            sorter = ProductNetworkSorter.for_factor(path_graph(3), r)
            keys = rng.integers(0, 2**20, size=3**r)
            lattice, ledger = sorter.sort_sequence(keys, tracer=tracer)
            seq = lattice_to_sequence(lattice)
        else:
            sorter = MachineSorter.for_factor(k2(), r)
            keys = rng.integers(0, 2**20, size=2**r)
            machine, ledger = sorter.sort(keys, tracer=tracer)
            seq = lattice_to_sequence(machine.lattice())
        assert np.all(np.diff(seq) >= 0)
        assert tracer.count(kind="s2") == (r - 1) ** 2
        assert tracer.count(kind="routing") == (r - 1) * (r - 2)
        # the telemetry invoice equals the driver's ledger, charge by charge
        assert tracer.total_rounds() == ledger.total_rounds
        s2_spans = tracer.find(kind="s2")
        assert sum(s.rounds for s in s2_spans) == ledger.s2_rounds
        assert sum(s.rounds for s in tracer.find(kind="routing")) == ledger.routing_rounds

    def test_lattice_traced_observer_path_same_counts(self, rng):
        # the readable per-block Step 4 path (state observer on the bus) must
        # emit the same span structure as the vectorised path
        r = 3
        sorter = ProductNetworkSorter.for_factor(path_graph(3), r)
        keys = rng.integers(0, 2**20, size=3**r)
        tracer = Tracer()
        tracer.bus.subscribe(CallbackSubscriber(lambda e, p: None))
        sorter.sort_sequence(keys, tracer=tracer)
        assert tracer.count(kind="s2") == (r - 1) ** 2
        assert tracer.count(kind="routing") == (r - 1) * (r - 2)

    def test_recursion_shape(self, rng):
        # dims 3..r each appear as one merge span on the charged path
        r = 4
        tracer = Tracer()
        sorter = ProductNetworkSorter.for_factor(path_graph(3), r)
        sorter.sort_sequence(rng.integers(0, 2**20, size=3**r), tracer=tracer)
        merges = tracer.find("merge")
        assert sorted(s.attrs["dim"] for s in merges) == [3, 3, 4]
        # every merge level has distribute/interleave free spans
        assert tracer.count("distribute", kind="free") == len(merges)
        assert tracer.count("interleave", kind="free") == len(merges)


class TestLedgerSubscriber:
    def test_rebuilds_invoice_from_bus(self, rng):
        tracer = Tracer()
        replayed = CostLedger()
        tracer.bus.subscribe(LedgerSubscriber(replayed))
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 3)
        _, direct = sorter.sort_sequence(rng.integers(0, 2**20, size=27), tracer=tracer)
        # one run fed both ledgers once — identical, not doubled
        assert replayed.s2_calls == direct.s2_calls
        assert replayed.routing_calls == direct.routing_calls
        assert replayed.total_rounds == direct.total_rounds

    def test_ignores_unrelated_events(self):
        ledger = CostLedger()
        sub = LedgerSubscriber(ledger)
        sub.on_event(point_event("noise", payload=1))
        tracer = Tracer()
        tracer.bus.subscribe(sub)
        with tracer.span("structural"):  # no kind attr -> no charge
            pass
        assert ledger.total_rounds == 0 and ledger.s2_calls == 0


class TestPointEventStates:
    """Intermediate states arrive as ``point`` events on the tracer's bus —
    the unified replacement for the retired ``trace=`` callable hook."""

    def _inputs(self):
        return [[1, 4, 7, 10], [2, 5, 8, 11]]

    def test_bare_bus_sees_stages(self):
        bus = EventBus()
        captured = {}
        bus.subscribe(CallbackSubscriber(lambda e, p: captured.update({e: p})))
        out = multiway_merge(self._inputs(), tracer=bus)
        assert out == sorted(sum(self._inputs(), []))
        assert captured["result"] == out
        for stage in ("step1_B", "step2_C", "step3_D", "step4_F", "result"):
            assert stage in captured

    def test_tracer_bus_and_bare_bus_see_identical_streams(self):
        via_tracer, via_bus = [], []
        tracer = Tracer()
        tracer.bus.subscribe(CallbackSubscriber(lambda e, p: via_tracer.append((e, p))))
        multiway_merge(self._inputs(), tracer=tracer)
        bus = EventBus()
        bus.subscribe(CallbackSubscriber(lambda e, p: via_bus.append((e, p))))
        multiway_merge(self._inputs(), tracer=bus)
        assert via_tracer == via_bus

    def test_span_only_tracer_emits_no_point_events(self):
        tracer = Tracer()  # private bus, no subscribers
        out = multiway_merge(self._inputs(), tracer=tracer)
        assert out == sorted(sum(self._inputs(), []))
        assert tracer.roots  # spans recorded as usual

    def test_sequence_level_span_tree(self):
        tracer = Tracer()
        multiway_merge(self._inputs(), tracer=tracer)
        root = tracer.roots[0]
        assert root.name == "multiway-merge"
        names = [c.name for c in root.children]
        assert names == ["distribute", "column-merge", "column-merge", "interleave", "cleanup"]

    def test_multiway_merge_sort_spans(self):
        tracer = Tracer()
        keys = list(range(26, -1, -1))
        out = multiway_merge_sort(keys, 3, tracer=tracer)
        assert out == sorted(keys)
        root = tracer.roots[0]
        assert root.name == "sort" and root.attrs["backend"] == "sequence"
        assert tracer.count("merge-round") == 1  # r = 3: one merge round


class TestMachineTimeline:
    def test_records_every_super_step(self, rng):
        sorter = MachineSorter.for_factor(k2(), 3)
        timeline = MachineTimeline(sorter.network)
        machine, ledger = sorter.sort(rng.integers(0, 100, size=8), timeline=timeline)
        assert len(timeline.steps) == machine.operations
        assert sum(s.rounds for s in timeline.steps) == ledger.total_rounds
        assert all(1 <= s.dimension <= 3 for s in timeline.steps if s.dimension is not None)
        assert all(0 < s.utilisation <= 1.0 for s in timeline.steps)
        summary = timeline.summary()
        assert summary["steps"] == len(timeline.steps)
        assert set(summary["dimension_steps"]) <= {1, 2, 3}

    def test_reset_allows_reuse(self, rng):
        sorter = MachineSorter.for_factor(k2(), 3)
        timeline = MachineTimeline(sorter.network)
        sorter.sort(rng.integers(0, 100, size=8), timeline=timeline)
        first = len(timeline.steps)
        timeline.reset()
        assert timeline.steps == []
        sorter.sort(rng.integers(0, 100, size=8), timeline=timeline)
        assert len(timeline.steps) == first  # oblivious schedule

    def test_bus_republication_feeds_traffic_recorder(self, rng):
        # TrafficRecorder as a bus subscriber == TrafficRecorder on machine
        net = ProductGraph(path_graph(3), 2)
        bus = EventBus()
        via_bus = TrafficRecorder(net)
        bus.subscribe(TrafficSubscriber(via_bus))
        timeline = MachineTimeline(net, bus=bus)
        machine = NetworkMachine(net, np.arange(9)[::-1].copy())
        direct = TrafficRecorder(net)
        machine.recorder = direct
        machine.timeline = timeline
        machine.compare_exchange([((0, 0), (0, 1)), ((1, 0), (2, 0))])
        machine.compare_exchange([((0, 1), (0, 2))])
        assert via_bus.stats() == direct.stats()
        assert len(timeline.steps) == 2

    def test_mixed_dimension_step_has_no_single_dimension(self):
        net = ProductGraph(path_graph(3), 2)
        machine = NetworkMachine(net, np.arange(9))
        timeline = MachineTimeline(net)
        machine.timeline = timeline
        machine.compare_exchange([((0, 0), (0, 1)), ((1, 0), (2, 0))])  # dims 1 and 2
        machine.compare_exchange([((0, 1), (0, 2))])  # dim 1 only
        assert timeline.steps[0].dimension is None
        assert timeline.steps[1].dimension == 1


class TestExporters:
    def _traced_machine_run(self, rng, r=3):
        tracer = Tracer()
        sorter = MachineSorter.for_factor(k2(), r)
        timeline = MachineTimeline(sorter.network)
        sorter.sort(rng.integers(0, 100, size=2**r), tracer=tracer, timeline=timeline)
        return tracer, timeline

    def test_jsonl_round_trip(self, rng):
        tracer, timeline = self._traced_machine_run(rng)
        lines = spans_to_jsonl(tracer).splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == sum(1 for _ in tracer.iter_spans())
        by_id = {rec["span_id"]: rec for rec in records}
        for rec in records:  # parent links resolve within the file
            assert rec["parent_id"] is None or rec["parent_id"] in by_id
        steps = [json.loads(line) for line in timeline_to_jsonl(timeline).splitlines()]
        assert len(steps) == len(timeline.steps)
        assert steps[0]["step"] == 0

    def test_chrome_trace_structure(self, rng):
        tracer, timeline = self._traced_machine_run(rng)
        doc = to_chrome_trace(tracer, timeline=timeline)
        text = json.dumps(doc)  # must be JSON-serialisable as-is
        doc = json.loads(text)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        counters = [e for e in events if e["ph"] == "C"]
        assert len(complete) == sum(1 for _ in tracer.iter_spans())
        assert len(counters) == len(timeline.steps)
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert {"name", "cat", "pid", "tid", "args"} <= set(e)
        # one named track per paper dimension seen in the span tree
        track_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        dims = {s.attrs["dim"] for s in tracer.iter_spans() if "dim" in s.attrs}
        assert {f"dimension {d}" for d in dims} <= track_names

    def test_chrome_trace_dimension_tracks_inherited(self, rng):
        tracer, _ = self._traced_machine_run(rng)
        doc = to_chrome_trace(tracer)
        # children of a dim=k merge span (e.g. column-merges) inherit track k
        by_name = {}
        for e in doc["traceEvents"]:
            if e.get("ph") == "X":
                by_name.setdefault(e["name"], e)
        assert by_name["column-merges"]["tid"] == by_name["merge"]["tid"]

    def test_phase_summary_table(self, rng):
        tracer, timeline = self._traced_machine_run(rng)
        text = phase_summary(tracer, timeline=timeline)
        assert "phase" in text and "rounds" in text
        assert "initial-block-sorts" in text and "transposition" in text
        assert "super-steps" in text  # the machine timeline footer

    def test_empty_exports(self):
        tracer = Tracer()
        assert spans_to_jsonl(tracer) == ""
        doc = to_chrome_trace(tracer)
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []
        assert "phase" in phase_summary(tracer)

    def test_chrome_trace_json_cli_equivalence(self, rng):
        tracer, timeline = self._traced_machine_run(rng)
        doc = json.loads(chrome_trace_json(tracer, timeline=timeline))
        assert doc["traceEvents"]


class TestEventBus:
    def test_subscribe_unsubscribe(self):
        bus = EventBus()
        assert not bus.active
        seen = []
        bus.subscribe(seen.append)
        assert bus.active
        bus.publish(point_event("x"))
        bus.unsubscribe(seen.append)
        assert not bus.active
        bus.publish(point_event("y"))
        assert len(seen) == 1

    def test_object_subscriber_unsubscribes_by_identity(self):
        bus = EventBus()
        seen = []
        sub = CallbackSubscriber(lambda e, p: seen.append(e))
        bus.subscribe(sub)
        assert bus.active
        bus.unsubscribe(sub)
        assert not bus.active

    def test_unsubscribe_absent_is_noop(self):
        bus = EventBus()
        bus.unsubscribe(lambda e: None)
        assert not bus.active

    def test_multiple_subscribers_all_see_events(self):
        bus = EventBus()
        a, b = [], []
        bus.subscribe(a.append)
        bus.subscribe(b.append)
        bus.publish(point_event("x", payload=1))
        assert len(a) == len(b) == 1
        assert a[0] is b[0]


class TestTimelineRingBuffer:
    """Opt-in ``max_steps`` bound: retain the tail, count the evictions."""

    def _run(self, rng, max_steps=None):
        sorter = MachineSorter.for_factor(k2(), 3)
        timeline = MachineTimeline(sorter.network, max_steps=max_steps)
        machine, _ = sorter.sort(rng.integers(0, 100, size=8), timeline=timeline)
        return timeline, machine

    def test_unbounded_by_default(self, rng):
        timeline, machine = self._run(rng)
        assert timeline.max_steps is None
        assert timeline.dropped_steps == 0
        assert len(timeline.steps) == machine.operations

    def test_ring_retains_most_recent_steps(self, rng):
        full, machine = self._run(rng)
        bounded, _ = self._run(rng, max_steps=5)
        assert len(bounded.steps) == 5
        assert bounded.dropped_steps == machine.operations - 5
        # indices stay absolute: the retained tail is the last five steps
        assert [s.index for s in bounded.steps] == [
            s.index for s in full.steps[-5:]
        ]
        assert bounded.steps[0].index == machine.operations - 5

    def test_dropped_steps_surface_in_summary(self, rng):
        timeline, machine = self._run(rng, max_steps=3)
        summary = timeline.summary()
        assert summary["steps"] == 3
        assert summary["dropped_steps"] == machine.operations - 3
        # aggregates cover only the retained window
        assert summary["pairs"] == sum(s.pairs for s in timeline.steps)

    def test_phase_summary_footer_reports_drops(self, rng):
        tracer = Tracer()
        sorter = MachineSorter.for_factor(k2(), 3)
        timeline = MachineTimeline(sorter.network, max_steps=4)
        sorter.sort(rng.integers(0, 100, size=8), tracer=tracer, timeline=timeline)
        text = phase_summary(tracer, timeline=timeline)
        assert f"({timeline.dropped_steps} dropped)" in text

    def test_dropped_steps_still_reach_the_bus(self, rng):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        sorter = MachineSorter.for_factor(k2(), 3)
        timeline = MachineTimeline(sorter.network, bus=bus, max_steps=2)
        machine, _ = sorter.sort(rng.integers(0, 100, size=8), timeline=timeline)
        assert len([e for e in seen if e.kind == "machine_step"]) == machine.operations

    def test_reset_clears_drop_accounting(self, rng):
        timeline, machine = self._run(rng, max_steps=3)
        assert timeline.dropped_steps > 0
        timeline.reset()
        assert timeline.dropped_steps == 0
        assert list(timeline.steps) == []
        sorter = MachineSorter.for_factor(k2(), 3)
        sorter.sort(rng.integers(0, 100, size=8), timeline=timeline)
        assert timeline.steps[0].index == machine.operations - 3  # restarted at 0

    def test_exact_capacity_drops_nothing(self, rng):
        _, machine = self._run(rng)
        timeline, _ = self._run(rng, max_steps=machine.operations)
        assert timeline.dropped_steps == 0
        assert timeline.steps[0].index == 0

    def test_invalid_max_steps_rejected(self):
        net = ProductGraph(k2(), 3)
        with pytest.raises(ValueError, match="max_steps"):
            MachineTimeline(net, max_steps=0)
        with pytest.raises(ValueError, match="max_steps"):
            MachineTimeline(net, max_steps=-1)


class TestExportEdgeCases:
    """Exports must not crash on empty, disabled or span-less tracers."""

    def test_null_tracer_exports(self):
        assert spans_to_jsonl(NULL_TRACER) == ""
        doc = to_chrome_trace(NULL_TRACER)
        # only the process_name metadata record — no spans, no counters
        assert [e for e in doc["traceEvents"] if e["ph"] != "M"] == []
        assert json.loads(chrome_trace_json(NULL_TRACER)) == doc
        text = phase_summary(NULL_TRACER)
        assert "phase" in text  # header renders, no rows

    def test_empty_timeline_exports(self):
        timeline = MachineTimeline(ProductGraph(k2(), 2))
        assert timeline_to_jsonl(timeline) == ""
        assert timeline.summary()["steps"] == 0
        doc = to_chrome_trace(Tracer(), timeline=timeline)
        assert [e for e in doc["traceEvents"] if e["ph"] == "C"] == []

    def test_point_events_only_tracer(self):
        tracer = Tracer()
        collected = []
        tracer.bus.subscribe(collected.append)
        tracer.event("distribute", payload={"dim": 3})
        tracer.event("cleanup")
        # events flowed to the bus, but no spans were ever opened
        assert [e.name for e in collected] == ["distribute", "cleanup"]
        assert tracer.roots == []
        assert spans_to_jsonl(tracer) == ""
        doc = json.loads(chrome_trace_json(tracer))
        assert [e for e in doc["traceEvents"] if e["ph"] != "M"] == []
        assert "phase" in phase_summary(tracer)
