"""Tests for product-network construction (paper §2, Definition 1, Figs. 1-2)."""

from __future__ import annotations

import pytest

from repro.graphs.library import cycle_graph, k2, path_graph, petersen_graph
from repro.graphs.product import ProductGraph


class TestDefinition1:
    def test_hypercube_is_product_of_k2(self):
        """PG_r of K_2 is the r-cube: 2^r nodes, r*2^(r-1) edges, degree r."""
        for r in (1, 2, 3, 4):
            pg = ProductGraph(k2(), r)
            assert pg.num_nodes == 2**r
            assert pg.num_edges == r * 2 ** (r - 1)
            for x in pg.nodes():
                assert pg.degree(x) == r

    def test_grid_is_product_of_path(self):
        pg = ProductGraph(path_graph(3), 2)
        assert pg.num_nodes == 9
        assert pg.num_edges == 2 * 2 * 3  # r * |E| * N^(r-1)
        assert pg.is_edge((0, 0), (0, 1))
        assert pg.is_edge((0, 0), (1, 0))
        assert not pg.is_edge((0, 0), (1, 1))  # two positions differ
        assert not pg.is_edge((0, 0), (0, 2))  # not a factor edge

    def test_edges_iterate_once(self):
        pg = ProductGraph(cycle_graph(4), 2)
        edges = list(pg.edges())
        assert len(edges) == pg.num_edges
        assert len({tuple(sorted(map(pg.flat_index, e))) for e in edges}) == len(edges)

    def test_neighbors_match_is_edge(self):
        pg = ProductGraph(petersen_graph(), 2)
        x = (3, 7)
        nbrs = set(pg.neighbors(x))
        assert all(pg.is_edge(x, y) for y in nbrs)
        assert len(nbrs) == pg.degree(x)

    def test_differing_dimension(self):
        pg = ProductGraph(path_graph(3), 3)
        assert pg.differing_dimension((0, 1, 2), (0, 1, 1)) == 1
        assert pg.differing_dimension((0, 1, 2), (1, 1, 2)) == 3
        assert pg.differing_dimension((0, 1, 2), (0, 1, 2)) is None
        assert pg.differing_dimension((0, 1, 2), (1, 2, 2)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ProductGraph(path_graph(3), 0)


class TestFlatIndex:
    def test_roundtrip(self):
        pg = ProductGraph(path_graph(3), 3)
        for i in range(pg.num_nodes):
            assert pg.flat_index(pg.label_of(i)) == i

    def test_c_order(self):
        """Flat index is the C-order index of the (N,)*r key lattice."""
        import numpy as np

        pg = ProductGraph(path_graph(3), 2)
        arange = np.arange(9).reshape(3, 3)
        for label in pg.nodes():
            assert arange[label] == pg.flat_index(label)

    def test_validation(self):
        pg = ProductGraph(path_graph(3), 2)
        with pytest.raises(ValueError):
            pg.flat_index((0, 3))
        with pytest.raises(ValueError):
            pg.flat_index((0,))
        with pytest.raises(ValueError):
            pg.label_of(9)


class TestSubgraphViews:
    def test_dimension_copies(self):
        """Erasing dimension 1 of PG_3 leaves N copies of PG_2 (Fig. 2)."""
        pg = ProductGraph(path_graph(3), 3)
        copies = pg.dimension_copies(1)
        assert len(copies) == 3
        seen = set()
        for u, view in enumerate(copies):
            nodes = list(view.nodes())
            assert len(nodes) == 9
            assert all(lab[-1] == u for lab in nodes)
            seen.update(nodes)
        assert len(seen) == 27

    def test_full_and_reduced_roundtrip(self):
        pg = ProductGraph(path_graph(3), 4)
        view = pg.subgraph((1, 3), (2, 0))
        for reduced in [(0, 0), (1, 2), (2, 1)]:
            full = view.full_label(reduced)
            assert len(full) == 4
            # position 1 (rightmost) == 2, position 3 == 0
            assert full[3] == 2 and full[1] == 0
            assert view.reduced_label(full) == reduced

    def test_reduced_label_validates_membership(self):
        pg = ProductGraph(path_graph(3), 3)
        view = pg.subgraph((1,), (2,))
        with pytest.raises(ValueError):
            view.reduced_label((0, 0, 1))  # position 1 is 1, not 2

    def test_subgraph_validation(self):
        pg = ProductGraph(path_graph(3), 3)
        with pytest.raises(ValueError):
            pg.subgraph((1, 1), (0, 0))
        with pytest.raises(ValueError):
            pg.subgraph((4,), (0,))
        with pytest.raises(ValueError):
            pg.subgraph((1,), (5,))
        with pytest.raises(ValueError):
            pg.subgraph((1,), (0, 1))

    def test_view_nodes_form_isomorphic_product(self):
        """A [u]PG^i view's nodes, reduced, enumerate PG_{r-1} exactly."""
        pg = ProductGraph(cycle_graph(3), 3)
        view = pg.subgraph((2,), (1,))
        reduced = sorted(view.reduced_label(f) for f in view.nodes())
        sub = view.as_product_graph()
        assert reduced == sorted(sub.nodes())
        assert sub.r == 2

    def test_empty_view_is_whole_graph(self):
        pg = ProductGraph(path_graph(3), 2)
        view = pg.subgraph((), ())
        assert view.reduced_order == 2
        assert view.full_label((1, 2)) == (1, 2)

    def test_to_networkx(self):
        pg = ProductGraph(k2(), 3)
        g = pg.to_networkx()
        assert g.number_of_nodes() == 8 and g.number_of_edges() == 12
