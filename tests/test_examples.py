"""Smoke tests: every example script runs clean end to end."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES = [
    "quickstart.py",
    "worked_example.py",
    "portability.py",
    "network_explorer.py",
    "hypercube_showdown.py",
    "custom_factor.py",
    "extensions_demo.py",
]

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    assert os.path.exists(path), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script} printed nothing"


def test_quickstart_reports_theorem1(capsys=None):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "quickstart.py"))
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=240
    )
    assert "measured == predicted" in result.stdout


def test_worked_example_prints_paper_arrays():
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "worked_example.py"))
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True, timeout=240
    )
    assert "0 4 4" in result.stdout  # Fig. 12's A_0 top row
    assert "Fig. 15b" in result.stdout
