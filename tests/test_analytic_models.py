"""Tests for the §5 analytic cost catalog and routing models."""

from __future__ import annotations

import pytest

from repro.graphs.library import (
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    de_bruijn_graph,
    k2,
    path_graph,
    petersen_graph,
    shuffle_exchange_graph,
    star_graph,
)
from repro.sorters2d import (
    AdjacentStepRoutingModel,
    ConstantRoutingModel,
    HypercubeThreeStepSorter,
    MeasuredExecutableModel,
    OddEvenSnakeSorter,
    PublishedRoutingModel,
    batcher_emulation_model,
    hypercube_three_step_model,
    kunde_torus_model,
    schnorr_shamir_model,
    sorter_for_factor,
    sublinear_term,
    torus_emulation_model,
)


class TestClosedForms:
    def test_schnorr_shamir_leading_term(self):
        m = schnorr_shamir_model(include_lower_order=False)
        assert m.rounds(10) == 30
        assert m.rounds(100) == 300

    def test_schnorr_shamir_lower_order_is_sublinear(self):
        m = schnorr_shamir_model()
        for n in (16, 64, 256, 1024):
            assert m.rounds(n) - 3 * n == sublinear_term(n)
            assert sublinear_term(n) < n  # o(N) in the practical range

    def test_kunde(self):
        m = kunde_torus_model(include_lower_order=False)
        assert m.rounds(10) == 25
        assert m.rounds(8) == 20

    def test_hypercube_constant(self):
        m = hypercube_three_step_model()
        assert m.rounds(2) == 3
        with pytest.raises(ValueError):
            m.rounds(3)

    def test_torus_emulation_scales_kunde(self):
        g = complete_binary_tree(2)
        m = torus_emulation_model(g)
        base = kunde_torus_model()
        assert m.rounds(7) % base.rounds(7) == 0
        assert m.rounds(7) // base.rounds(7) >= 1
        with pytest.raises(ValueError):
            m.rounds(5)

    def test_batcher_emulation_log_squared(self):
        g = de_bruijn_graph(4)
        m = batcher_emulation_model(g, dilation=2, congestion=2)
        assert m.rounds(16) == 2 * 2 * (2 * 4) ** 2
        with pytest.raises(ValueError):
            m.rounds(8)


class TestAutoSelection:
    def test_k2_gets_three_step(self):
        assert sorter_for_factor(k2()).name == "hypercube-3step"

    def test_path_gets_schnorr_shamir(self):
        assert sorter_for_factor(path_graph(5)).name == "schnorr-shamir"

    def test_cycle_gets_kunde(self):
        assert sorter_for_factor(cycle_graph(6)).name == "kunde-torus"

    def test_de_bruijn_gets_batcher_emulation(self):
        assert sorter_for_factor(de_bruijn_graph(3)).name.startswith("batcher-emulation")

    def test_shuffle_exchange_gets_batcher_emulation_dilation4(self):
        name = sorter_for_factor(shuffle_exchange_graph(3)).name
        assert name.startswith("batcher-emulation(d4")

    def test_hamiltonian_factor_gets_grid_sorter(self):
        assert sorter_for_factor(petersen_graph()).name == "schnorr-shamir"
        assert sorter_for_factor(complete_graph(5)).name == "schnorr-shamir"

    def test_tree_gets_torus_emulation(self):
        assert sorter_for_factor(complete_binary_tree(2)).name.startswith("torus-emulation")

    def test_star_gets_torus_emulation(self):
        assert sorter_for_factor(star_graph(5)).name.startswith("torus-emulation")


class TestRoutingModels:
    def test_published_path(self):
        assert PublishedRoutingModel(path_graph(6)).rounds(6) == 5

    def test_published_cycle(self):
        assert PublishedRoutingModel(cycle_graph(8)).rounds(8) == 4

    def test_published_fallback_measures(self):
        """No closed form for a tree: the model measures the reversal
        permutation's makespan (>= the farthest routed pair's distance)."""
        g = complete_binary_tree(2)
        rounds = PublishedRoutingModel(g).rounds(7)
        farthest = max(g.distance_matrix[u][6 - u] for u in range(7))
        assert rounds >= farthest >= 2

    def test_published_validates_n(self):
        with pytest.raises(ValueError):
            PublishedRoutingModel(path_graph(4)).rounds(5)

    def test_adjacent_step_hamiltonian_is_one(self):
        assert AdjacentStepRoutingModel(path_graph(6)).rounds(6) == 1
        assert AdjacentStepRoutingModel(cycle_graph(6)).rounds(6) == 1

    def test_adjacent_step_tree_is_small_constant(self):
        g = complete_binary_tree(2).canonically_labelled()
        rounds = AdjacentStepRoutingModel(g).rounds(7)
        assert 1 <= rounds <= 6  # bounded by twice the dilation-3 embedding

    def test_adjacent_cheaper_than_published(self):
        """The §4 closing remark: Hamiltonicity only affects constants —
        and the adjacent-step model is never worse than full routing."""
        for g in (path_graph(6), cycle_graph(6), complete_graph(4)):
            assert (
                AdjacentStepRoutingModel(g).rounds(g.n)
                <= PublishedRoutingModel(g).rounds(g.n)
            )

    def test_constant_model(self):
        assert ConstantRoutingModel(1).rounds(2) == 1
        with pytest.raises(ValueError):
            ConstantRoutingModel(-1).rounds(2)


class TestMeasuredExecutableModel:
    def test_measures_and_caches(self):
        g = path_graph(3)
        model = MeasuredExecutableModel("measured-snake", g, OddEvenSnakeSorter())
        first = model.rounds(3)
        assert first == model.rounds(3)  # cached
        assert first >= 9  # N^2 phases on the worst-case input

    def test_three_step_measures_three(self):
        model = MeasuredExecutableModel("measured-3step", k2(), HypercubeThreeStepSorter())
        assert model.rounds(2) == 3

    def test_validates_n(self):
        model = MeasuredExecutableModel("m", path_graph(3), OddEvenSnakeSorter())
        with pytest.raises(ValueError):
            model.rounds(4)
