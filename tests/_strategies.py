"""Hypothesis strategies for product-network property tests."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.graphs import (
    FactorGraph,
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    path_graph,
    random_connected_graph,
    star_graph,
)

__all__ = ["factor_graphs", "small_products", "key_arrays"]


@st.composite
def factor_graphs(draw, min_n: int = 2, max_n: int = 6) -> FactorGraph:
    """A small connected factor graph: structured or random."""
    kind = draw(st.sampled_from(["path", "cycle", "complete", "star", "tree", "random"]))
    if kind == "path":
        return path_graph(draw(st.integers(min_n, max_n)))
    if kind == "cycle":
        return cycle_graph(draw(st.integers(max(3, min_n), max_n)))
    if kind == "complete":
        return complete_graph(draw(st.integers(min_n, max_n)))
    if kind == "star":
        return star_graph(draw(st.integers(min_n, max_n)))
    if kind == "tree":
        return complete_binary_tree(draw(st.integers(1, 2)))
    n = draw(st.integers(max(3, min_n), max_n))
    seed = draw(st.integers(0, 10_000))
    return random_connected_graph(n, extra_edge_prob=0.2, seed=seed)


@st.composite
def small_products(draw, max_nodes: int = 128) -> tuple[FactorGraph, int]:
    """A (factor, r) pair whose product stays under ``max_nodes`` nodes."""
    factor = draw(factor_graphs())
    max_r = 2
    while factor.n ** (max_r + 1) <= max_nodes:
        max_r += 1
    r = draw(st.integers(2, max_r))
    return factor, r


@st.composite
def key_arrays(draw, size: int, low: int = -100, high: int = 100) -> np.ndarray:
    """An integer key array of exactly ``size`` entries (duplicates likely)."""
    values = draw(
        st.lists(st.integers(low, high), min_size=size, max_size=size)
    )
    return np.array(values)
