"""Tests for the executable two-dimensional sorters (the ``S_2`` black box)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.library import (
    complete_binary_tree,
    cycle_graph,
    k2,
    path_graph,
    petersen_graph,
    random_connected_graph,
    star_graph,
)
from repro.graphs.product import ProductGraph
from repro.machine.machine import NetworkMachine
from repro.orders import gray_rank, lattice_to_sequence
from repro.core.verification import zero_one_sequences
from repro.sorters2d import HypercubeThreeStepSorter, OddEvenSnakeSorter, ShearSorter

SORTERS = {
    "odd-even-snake": OddEvenSnakeSorter(),
    "shearsort": ShearSorter(),
}


def _sorted_in_local_snake(machine, view, descending):
    lat = machine.lattice()
    n = view.parent.factor.n
    seq = [None] * (n * n)
    for y2 in range(n):
        for y1 in range(n):
            seq[gray_rank((y2, y1), n)] = lat[view.full_label((y2, y1))]
    pairs = zip(seq, seq[1:])
    return all(b <= a for a, b in pairs) if descending else all(a <= b for a, b in zip(seq, seq[1:]))


@pytest.mark.parametrize("name", sorted(SORTERS), ids=sorted(SORTERS))
class TestExecutableSorters:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: path_graph(3),
            lambda: path_graph(4),
            lambda: cycle_graph(5),
            lambda: star_graph(4),
            lambda: complete_binary_tree(2),
            lambda: random_connected_graph(5, seed=11),
        ],
        ids=["path3", "path4", "cycle5", "star4", "cbt2", "random5"],
    )
    def test_sorts_pg2_of_any_factor(self, name, factory):
        sorter = SORTERS[name]
        g = factory()
        net = ProductGraph(g, 2)
        rng = np.random.default_rng(17)
        keys = rng.integers(0, 1000, size=net.num_nodes)
        m = NetworkMachine(net, keys)
        view = net.subgraph((), ())
        sorter.sort(m, view, descending=False)
        assert np.array_equal(lattice_to_sequence(m.lattice()), np.sort(keys))

    def test_descending(self, name):
        sorter = SORTERS[name]
        net = ProductGraph(path_graph(4), 2)
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 100, size=16)
        m = NetworkMachine(net, keys)
        sorter.sort(m, net.subgraph((), ()), descending=True)
        assert np.array_equal(lattice_to_sequence(m.lattice()), np.sort(keys)[::-1])

    def test_batch_on_disjoint_blocks(self, name):
        """All PG_2 blocks of a 3D product sorted simultaneously, mixed
        directions, without interfering."""
        sorter = SORTERS[name]
        net = ProductGraph(path_graph(3), 3)
        rng = np.random.default_rng(23)
        keys = rng.integers(0, 100, size=27)
        m = NetworkMachine(net, keys)
        views = [net.subgraph((3,), (u,)) for u in range(3)]
        descending = [False, True, False]
        sorter.sort_batch(m, views, descending)
        for view, desc in zip(views, descending):
            assert _sorted_in_local_snake(m, view, desc)

    def test_batch_costs_like_single(self, name):
        """Lockstep batching: sorting 3 disjoint blocks costs the same
        rounds as sorting 1 (on a Hamiltonian-labelled factor)."""
        sorter = SORTERS[name]
        net = ProductGraph(path_graph(3), 3)
        rng = np.random.default_rng(29)

        m1 = NetworkMachine(net, rng.integers(0, 100, size=27))
        single = sorter.sort_batch(m1, [net.subgraph((3,), (0,))], [False])

        m3 = NetworkMachine(net, rng.integers(0, 100, size=27))
        views = [net.subgraph((3,), (u,)) for u in range(3)]
        batch = sorter.sort_batch(m3, views, [False, True, False])
        assert batch == single

    def test_validates_alignment(self, name):
        sorter = SORTERS[name]
        net = ProductGraph(path_graph(3), 2)
        m = NetworkMachine(net, np.arange(9))
        with pytest.raises(ValueError):
            sorter.sort_batch(m, [net.subgraph((), ())], [False, True])


class TestShearsortSpecifics:
    def test_rejects_non_2d_views(self):
        net = ProductGraph(path_graph(3), 3)
        m = NetworkMachine(net, np.arange(27))
        with pytest.raises(ValueError):
            ShearSorter().sort(m, net.subgraph((), ()))

    def test_round_bound(self):
        """Measured rounds match the (lg N + 1) N + lg N * N phase budget on
        Hamiltonian labels."""
        net = ProductGraph(path_graph(4), 2)
        m = NetworkMachine(net, np.arange(16)[::-1].copy())
        rounds = ShearSorter().sort(m, net.subgraph((), ()))
        assert rounds <= ShearSorter().max_rounds(4)

    def test_empty_batch(self):
        net = ProductGraph(path_graph(3), 2)
        m = NetworkMachine(net, np.arange(9))
        assert ShearSorter().sort_batch(m, [], []) == 0


class TestHypercubeThreeStep:
    def test_exhaustive_zero_one(self):
        """All 16 0-1 inputs sort in exactly 3 rounds — §5.3's claim,
        certified through the zero-one principle."""
        net = ProductGraph(k2(), 2)
        sorter = HypercubeThreeStepSorter()
        for bits in zero_one_sequences(4):
            m = NetworkMachine(net, np.array(bits))
            rounds = sorter.sort(m, net.subgraph((), ()))
            assert rounds == 3
            assert np.array_equal(lattice_to_sequence(m.lattice()), np.sort(np.array(bits)))

    def test_exhaustive_permutations(self):
        from itertools import permutations

        net = ProductGraph(k2(), 2)
        sorter = HypercubeThreeStepSorter()
        for perm in permutations(range(4)):
            m = NetworkMachine(net, np.array(perm))
            sorter.sort(m, net.subgraph((), ()))
            assert np.array_equal(lattice_to_sequence(m.lattice()), np.arange(4))

    def test_descending_exhaustive(self):
        from itertools import permutations

        net = ProductGraph(k2(), 2)
        sorter = HypercubeThreeStepSorter()
        for perm in permutations(range(4)):
            m = NetworkMachine(net, np.array(perm))
            sorter.sort(m, net.subgraph((), ()), descending=True)
            assert np.array_equal(lattice_to_sequence(m.lattice()), np.arange(3, -1, -1))

    def test_rejects_wrong_factor(self):
        net = ProductGraph(path_graph(3), 2)
        m = NetworkMachine(net, np.arange(9))
        with pytest.raises(ValueError):
            HypercubeThreeStepSorter().sort(m, net.subgraph((), ()))

    def test_batch_blocks_of_4d_cube(self):
        net = ProductGraph(k2(), 4)
        rng = np.random.default_rng(31)
        keys = rng.integers(0, 100, size=16)
        m = NetworkMachine(net, keys)
        views = [net.subgraph((3, 4), (a, b)) for b in range(2) for a in range(2)]
        rounds = HypercubeThreeStepSorter().sort_batch(m, views, [False] * 4)
        assert rounds == 3
        for view in views:
            assert _sorted_in_local_snake(m, view, False)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_property_all_sorters_agree(seed):
    """Both executable sorters produce the identical snake-sorted lattice."""
    rng = np.random.default_rng(seed)
    net = ProductGraph(cycle_graph(4), 2)
    keys = rng.integers(0, 40, size=16)
    results = []
    for sorter in SORTERS.values():
        m = NetworkMachine(net, keys.copy())
        sorter.sort(m, net.subgraph((), ()))
        results.append(m.lattice().copy())
    assert np.array_equal(results[0], results[1])


def test_petersen_pg2_sorts():
    """§5.4's network: 100 keys on the Petersen x Petersen product."""
    g = petersen_graph().canonically_labelled()
    net = ProductGraph(g, 2)
    rng = np.random.default_rng(41)
    keys = rng.integers(0, 10**6, size=100)
    m = NetworkMachine(net, keys)
    ShearSorter().sort(m, net.subgraph((), ()))
    assert np.array_equal(lattice_to_sequence(m.lattice()), np.sort(keys))
