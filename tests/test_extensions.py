"""Tests for the §6-inspired extensions (bulk regime, randomized slab sort)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.bulk import bulk_multiway_merge_sort
from repro.extensions.sample_sort import (
    classify_keys,
    randomized_round_model,
    randomized_slab_sort,
    sample_splitters,
)


class TestBulkSort:
    @pytest.mark.parametrize(
        "n,r,c", [(2, 2, 2), (2, 4, 3), (3, 2, 5), (3, 3, 4), (4, 2, 2), (2, 3, 1)]
    )
    def test_sorts_random(self, n, r, c):
        rng = random.Random(n * 100 + r * 10 + c)
        for _ in range(5):
            keys = [rng.randrange(500) for _ in range(c * n**r)]
            out, stats = bulk_multiway_merge_sort(keys, n, c)
            assert out == sorted(keys)
            assert stats.keys_per_node == c and stats.total_keys == len(keys)

    def test_zero_one_channels(self):
        """The lifting argument's ground set: 0-1 keys, every zero count."""
        n, r, c = 2, 3, 3
        total = c * n**r
        for zeros in range(0, total + 1, 3):
            keys = [1] * total
            # scatter zeros adversarially (stride pattern)
            for i in range(zeros):
                keys[(i * 7) % total] = 0
            out, _ = bulk_multiway_merge_sort(keys, n, c)
            assert out == sorted(keys)

    @given(st.lists(st.integers(0, 30), min_size=24, max_size=24))
    @settings(max_examples=30)
    def test_property(self, keys):
        out, _ = bulk_multiway_merge_sort(keys, 2, 3)  # 8 nodes x 3 keys
        assert out == sorted(keys)

    def test_duplicates(self):
        keys = [5] * 20 + [2] * 16
        out, _ = bulk_multiway_merge_sort(keys, 3, 4)
        assert out == sorted(keys)

    def test_c1_matches_plain_sort(self):
        from repro.core.sorting import multiway_merge_sort

        rng = random.Random(1)
        keys = [rng.randrange(100) for _ in range(27)]
        out, stats = bulk_multiway_merge_sort(keys, 3, 1)
        assert out == multiway_merge_sort(keys, 3)
        assert stats.modelled_rounds == stats.one_key_equivalent_rounds

    def test_amortisation_model(self):
        """Processor-round efficiency: the bulk machine spends
        ``c * S_r(N)`` rounds on ``N**r`` processors, the one-key machine
        ``S_r'(N)`` rounds on ``c * N**r`` processors.  Per processor-round
        per key, bulk wins whenever ``S_r < S_r'`` — always, since r < r'.
        (Raw rounds go the other way: the bigger machine is faster.)"""
        rng = random.Random(2)
        keys8 = [rng.randrange(100) for _ in range(2 * 16)]  # c=2, 16 nodes
        _, stats = bulk_multiway_merge_sort(keys8, 2, 2)
        assert stats.one_key_equivalent_rounds is not None
        s_r = stats.modelled_rounds // stats.keys_per_node
        assert s_r < stats.one_key_equivalent_rounds  # S_r < S_r'
        assert stats.modelled_rounds > stats.one_key_equivalent_rounds  # raw rounds

    def test_validation(self):
        with pytest.raises(ValueError):
            bulk_multiway_merge_sort([1, 2, 3], 2, 2)
        with pytest.raises(ValueError):
            bulk_multiway_merge_sort([1, 2, 3, 4], 2, 0)
        with pytest.raises(ValueError):
            bulk_multiway_merge_sort([1, 2, 3, 4], 2, 2)  # 2 nodes -> r = 1


class TestSampleSplitters:
    def test_splitter_count_and_order(self):
        rng = random.Random(0)
        keys = list(range(100))
        sp = sample_splitters(keys, 4, 8, rng)
        assert len(sp) == 3
        assert sp == sorted(sp)

    def test_classify(self):
        assert classify_keys([1, 5, 9], [4, 8]) == [0, 1, 2]
        assert classify_keys([4], [4, 8]) == [1]  # ties go right of the splitter... bisect_right

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            sample_splitters([1, 2], 1, 4, rng)
        with pytest.raises(ValueError):
            sample_splitters([1, 2], 2, 0, rng)


class TestRandomizedSlabSort:
    def test_sorts_with_slack(self):
        rng = random.Random(3)
        keys = [rng.randrange(10**6) for _ in range(5**3)]
        out, stats = randomized_slab_sort(keys, 5, 3, oversample=16, slack=1.4, rng=rng)
        assert out == sorted(keys)
        assert max(stats.loads) <= stats.capacity
        assert sum(stats.loads) == len(keys)

    def test_more_slack_fewer_attempts(self):
        """Monotone trend over seeds: generous slack needs no retries."""
        total_tight, total_loose = 0, 0
        for seed in range(10):
            rng = random.Random(seed)
            keys = [rng.randrange(10**6) for _ in range(4**3)]
            _, tight = randomized_slab_sort(
                keys, 4, 3, oversample=4, slack=1.25, rng=random.Random(seed), max_attempts=500
            )
            _, loose = randomized_slab_sort(
                keys, 4, 3, oversample=4, slack=2.0, rng=random.Random(seed), max_attempts=500
            )
            total_tight += tight.attempts
            total_loose += loose.attempts
        assert total_loose <= total_tight

    def test_strict_capacity_raises(self):
        """slack = 1.0 (one key per node, no buffer) essentially never
        balances — the module's headline negative finding."""
        rng = random.Random(5)
        keys = [rng.randrange(10**6) for _ in range(4**3)]
        with pytest.raises(RuntimeError):
            randomized_slab_sort(keys, 4, 3, slack=1.0, rng=rng, max_attempts=25)

    def test_validation(self):
        with pytest.raises(ValueError):
            randomized_slab_sort([1, 2, 3], 2, 2)
        with pytest.raises(ValueError):
            randomized_slab_sort(list(range(16)), 2, 4, slack=0.5)
        with pytest.raises(ValueError):
            randomized_slab_sort(list(range(4)), 2, 1)


class TestRoundModel:
    def test_recurrence(self):
        assert randomized_round_model(8, 2, s2=29, routing=7) == 29
        t3 = randomized_round_model(8, 3, s2=29, routing=7)
        assert t3 == 29 + (2 * 3 * 8 + 3 * 8 * 7)

    def test_attempts_scale_linear(self):
        one = randomized_round_model(8, 4, 29, 7, attempts=1)
        two = randomized_round_model(8, 4, 29, 7, attempts=2)
        assert two - one == one - 29

    def test_validation(self):
        with pytest.raises(ValueError):
            randomized_round_model(8, 1, 1, 1)
