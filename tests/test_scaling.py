"""Tests for the empirical growth-rate estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.scaling import (
    doubling_ratio,
    fit_polylog,
    fit_power_law,
    growth_exponent,
)


class TestPowerLaw:
    def test_exact_linear(self):
        xs = [2, 4, 8, 16]
        fit = fit_power_law(xs, [3 * x for x in xs])
        assert abs(fit.exponent - 1.0) < 1e-9
        assert abs(fit.coefficient - 3.0) < 1e-9
        assert fit.r_squared > 0.999

    def test_exact_quadratic(self):
        xs = [2, 3, 5, 9]
        assert abs(growth_exponent(xs, [x**2 for x in xs]) - 2.0) < 1e-9

    def test_with_lower_order_noise(self):
        xs = [8, 16, 32, 64, 128]
        ys = [3 * x + x**0.75 for x in xs]
        fit = fit_power_law(xs, ys)
        assert 0.95 < fit.exponent < 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, 2, 3])


class TestPolylog:
    def test_log_squared(self):
        xs = [4, 16, 64, 256]
        ys = [5 * np.log2(x) ** 2 for x in xs]
        assert abs(fit_polylog(xs, ys) - 2.0) < 1e-9

    def test_requires_x_above_one(self):
        with pytest.raises(ValueError):
            fit_polylog([1, 2], [1, 2])


class TestDoublingRatio:
    def test_linear_doubles(self):
        xs = [4, 8, 16, 32]
        assert abs(doubling_ratio(xs, [7 * x for x in xs]) - 2.0) < 1e-9

    def test_quadratic_quadruples(self):
        xs = [4, 8, 16]
        assert abs(doubling_ratio(xs, [x * x for x in xs]) - 4.0) < 1e-9

    def test_requires_geometric_sweep(self):
        with pytest.raises(ValueError):
            doubling_ratio([4, 9], [1, 2])


class TestOnMeasuredData:
    def test_grid_rounds_are_linear_in_n(self):
        """End-to-end: measured grid costs fit exponent ~1 (the §5.1 shape)."""
        from repro.core.lattice_sort import ProductNetworkSorter
        from repro.graphs import path_graph

        rng = np.random.default_rng(0)
        xs, ys = [], []
        for n in (4, 8, 16, 32):
            sorter = ProductNetworkSorter.for_factor(path_graph(n), 2, keep_log=False)
            keys = rng.integers(0, 2**20, size=n * n)
            _, ledger = sorter.sort_sequence(keys)
            xs.append(n)
            ys.append(ledger.total_rounds)
        assert 0.9 < growth_exponent(xs, ys) < 1.1

    def test_hypercube_rounds_are_quadratic_in_r(self):
        """The formula is quadratic in (r-1): 3(r-1)^2 + (r-1)(r-2)."""
        from repro.analysis.complexity import hypercube_sort_rounds

        rs = list(range(4, 40))
        ys = [hypercube_sort_rounds(r) for r in rs]
        assert 1.85 < growth_exponent([r - 1 for r in rs], ys) < 2.1
