"""Tests for the lattice backend (§4 implementation + §4.1 accounting)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.complexity import (
    merge_routing_calls,
    merge_s2_calls,
    sort_rounds,
    sort_routing_calls,
    sort_s2_calls,
)
from repro.core.lattice_sort import ProductNetworkSorter
from repro.core.multiway_merge import multiway_merge
from repro.core.sorting import multiway_merge_sort
from repro.graphs import cycle_graph, k2, path_graph
from repro.observability import CallbackSubscriber, EventBus
from repro.orders import lattice_to_sequence, sequence_to_lattice
from repro.sorters2d import AnalyticSorterModel, ConstantRoutingModel


def _unit_sorter():
    """S_2 = 1, R = 1: makes ledger totals equal call counts."""
    return (
        AnalyticSorterModel(name="unit", formula=lambda n: 1),
        ConstantRoutingModel(1),
    )


class TestCorrectness:
    def test_sorts_every_small_factor(self, any_factor, rng):
        r = 2 if any_factor.n > 6 else 3
        sorter = ProductNetworkSorter.for_factor(any_factor, r)
        keys = rng.integers(0, 2**20, size=sorter.network.num_nodes)
        lattice, _ = sorter.sort_sequence(keys)
        assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))

    @pytest.mark.parametrize("n,r", [(2, 2), (2, 6), (3, 4), (4, 3), (5, 2), (3, 5)])
    def test_geometry_sweep(self, n, r, rng):
        sorter = ProductNetworkSorter.for_factor(path_graph(n), r)
        keys = rng.integers(0, 1000, size=n**r)
        lattice, _ = sorter.sort_sequence(keys)
        assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))

    def test_input_not_modified(self, rng):
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 3)
        keys = rng.integers(0, 100, size=27)
        backup = keys.copy()
        sorter.sort_sequence(keys)
        assert np.array_equal(keys, backup)

    def test_matches_sequence_level_sort(self, rng):
        """The lattice backend and the §3.3 sequence algorithm agree."""
        keys = rng.integers(0, 50, size=81)
        seq_result = multiway_merge_sort(list(keys), 3)
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 4)
        lattice, _ = sorter.sort_sequence(keys)
        assert list(lattice_to_sequence(lattice)) == seq_result

    def test_sorted_reference(self, rng):
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 3)
        keys = rng.integers(0, 100, size=27)
        lattice, _ = sorter.sort_sequence(keys)
        assert np.array_equal(lattice, sorter.sorted_reference(keys.reshape(3, 3, 3)))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_duplicates_and_negatives(self, seed):
        rng = np.random.default_rng(seed)
        sorter = ProductNetworkSorter.for_factor(cycle_graph(3), 3)
        keys = rng.integers(-5, 5, size=27)
        lattice, _ = sorter.sort_sequence(keys)
        assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))

    def test_float_keys(self, rng):
        sorter = ProductNetworkSorter.for_factor(path_graph(4), 2)
        keys = rng.normal(size=16)
        lattice, _ = sorter.sort_sequence(keys)
        assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))


class TestValidation:
    def test_rejects_r1(self):
        with pytest.raises(ValueError):
            ProductNetworkSorter.for_factor(path_graph(3), 1)

    def test_rejects_wrong_shapes(self):
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 2)
        with pytest.raises(ValueError):
            sorter.sort_sequence(np.arange(8))
        with pytest.raises(ValueError):
            sorter.sort_lattice(np.zeros((3, 4)))

    def test_merge_requires_sorted_slices(self, rng):
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 3)
        with pytest.raises(ValueError):
            sorter.merge_sorted_subgraphs(rng.integers(0, 100, size=(3, 3, 3)))


class TestTheorem1Accounting:
    """The ledger must reproduce Theorem 1's invoice exactly."""

    def test_call_structure(self, any_factor, rng):
        r = 2 if any_factor.n > 6 else 3
        sorter = ProductNetworkSorter.for_factor(any_factor, r)
        keys = rng.integers(0, 1000, size=sorter.network.num_nodes)
        _, ledger = sorter.sort_sequence(keys)
        assert ledger.s2_calls == sort_s2_calls(r)
        assert ledger.routing_calls == sort_routing_calls(r)

    @pytest.mark.parametrize("r", [2, 3, 4, 5])
    def test_unit_costs_expose_formula(self, r, rng):
        """With S_2 = R = 1 the total *is* (r-1)^2 + (r-1)(r-2)."""
        s2, routing = _unit_sorter()
        sorter = ProductNetworkSorter.for_factor(path_graph(3), r, s2, routing)
        keys = rng.integers(0, 100, size=3**r)
        _, ledger = sorter.sort_sequence(keys)
        assert ledger.total_rounds == (r - 1) ** 2 + (r - 1) * (r - 2)

    @pytest.mark.parametrize("n,r", [(3, 3), (4, 3), (3, 4), (2, 5), (5, 3)])
    def test_total_matches_theorem1(self, n, r, rng):
        factor = path_graph(n) if n > 2 else k2()
        sorter = ProductNetworkSorter.for_factor(factor, r)
        keys = rng.integers(0, 1000, size=n**r)
        _, ledger = sorter.sort_sequence(keys)
        s2 = sorter.sorter2d.rounds(n)
        routing = sorter.routing.rounds(n)
        assert ledger.total_rounds == sort_rounds(r, s2, routing)

    def test_phase_log_detail(self, rng):
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 3)
        keys = rng.integers(0, 100, size=27)
        _, ledger = sorter.sort_sequence(keys)
        phases = [rec.phase for rec in ledger.records]
        assert phases.count("S2") == ledger.s2_calls
        assert phases.count("R") == ledger.routing_calls
        assert ledger.records[0].detail == "initial PG2 block sorts"

    def test_keep_log_false(self, rng):
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 3, keep_log=False)
        keys = rng.integers(0, 100, size=27)
        _, ledger = sorter.sort_sequence(keys)
        assert ledger.records == []
        assert ledger.total_rounds > 0


class TestLemma3Merge:
    @pytest.mark.parametrize("n,k", [(2, 3), (3, 3), (3, 4), (4, 3), (2, 5)])
    def test_merge_cost_matches_lemma3(self, n, k, rng):
        """M_k = 2(k-2)(S_2 + R) + S_2, measured on the top-level merge."""
        factor = path_graph(n) if n > 2 else k2()
        sorter = ProductNetworkSorter.for_factor(factor, k)
        # build a lattice whose [u]PG_{k-1} slices are snake-sorted
        keys = rng.integers(0, 1000, size=(n, n ** (k - 1)))
        lattice = np.stack(
            [sequence_to_lattice(np.sort(keys[u]), n, k - 1) for u in range(n)]
        )
        merged, ledger = sorter.merge_sorted_subgraphs(lattice)
        assert np.array_equal(lattice_to_sequence(merged), np.sort(keys, axis=None))
        assert ledger.s2_calls == merge_s2_calls(k)
        assert ledger.routing_calls == merge_routing_calls(k)
        s2 = sorter.sorter2d.rounds(n)
        routing = sorter.routing.rounds(n)
        assert ledger.total_rounds == 2 * (k - 2) * (s2 + routing) + s2

    def test_merge_matches_sequence_merge(self, rng):
        """Network merge and §3.1 sequence merge produce identical data."""
        n, k = 3, 3
        seqs = [sorted(rng.integers(0, 40, size=n ** (k - 1)).tolist()) for _ in range(n)]
        expect = multiway_merge(seqs)
        lattice = np.stack([sequence_to_lattice(np.array(s), n, k - 1) for s in seqs])
        sorter = ProductNetworkSorter.for_factor(path_graph(n), k)
        merged, _ = sorter.merge_sorted_subgraphs(lattice)
        assert list(lattice_to_sequence(merged)) == expect


def _capture_bus(cb) -> EventBus:
    bus = EventBus()
    bus.subscribe(CallbackSubscriber(cb))
    return bus


class TestTraceEvents:
    def test_events_fire_in_order(self, rng):
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 3)
        keys = rng.integers(0, 100, size=27)
        events = []
        sorter.sort_sequence(keys, tracer=_capture_bus(lambda e, lat: events.append(e)))
        assert events[0] == "initial_sorted"
        assert "merge3_after_step2" in events
        assert "merge3_step4_transposition0" in events
        assert "merge3_step4_transposition1" in events
        assert events[-1] == "after_merge_round_3"

    def test_trace_payloads_conserve_keys(self, rng):
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 3)
        keys = rng.integers(0, 100, size=27)
        payloads = []
        sorter.sort_sequence(keys, tracer=_capture_bus(lambda e, lat: payloads.append(lat)))
        for lat in payloads:
            assert sorted(lat.ravel().tolist()) == sorted(keys.tolist())
