"""Tests for the Schedule IR spine: one emitted artifact, many interpreters.

Pins the tentpole contract of the schedule refactor:

* the three interpreters — reference :func:`repro.schedule.replay`, the
  lattice backend's vectorised round-plan path, and the layer-packed
  compiled batch kernel — all agree with the snake-order ground truth on
  random lattices, for every canonical benchreg cell (Hypothesis property);
* the compiled kernel sorts a whole ``(batch, N**r)`` array in one pass;
* emission is keyless and cached, the compiled cache is keyed by the
  canonical schedule hash, and emitted hashes reproduce the hashes pinned
  in the blessed ``BENCH_seed.json`` byte for byte.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lattice_sort import ProductNetworkSorter
from repro.core.machine_sort import MachineSorter
from repro.observability.benchreg import DEFAULT_MATRIX
from repro.schedule import (
    ComparatorDAG,
    compile_schedule,
    replay,
    round_plan,
    snake_order_nodes,
)
from repro.staticcheck import emit_schedule

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CELL_IDS = [c.key for c in DEFAULT_MATRIX]


def _emit(cell) -> ComparatorDAG:
    return emit_schedule(cell.build_factor(), cell.r, backend=cell.backend)


def _snake_sorted(dag: ComparatorDAG, keys: np.ndarray) -> np.ndarray:
    """Ground truth: the keys placed in perfect snake order, flat node order."""
    expected = np.empty_like(keys)
    expected[..., snake_order_nodes(dag.n, dag.r)] = np.sort(keys, axis=-1)
    return expected


class TestInterpretersAgree:
    """The Hypothesis property of the issue: every interpreter of the one
    emitted artifact produces ``sorted_reference`` on random lattices."""

    @pytest.mark.parametrize("cell", DEFAULT_MATRIX, ids=CELL_IDS)
    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_replay_roundplan_compiled_match_reference(self, cell, data):
        dag = _emit(cell)
        keys = np.asarray(
            data.draw(
                st.lists(
                    st.integers(-(2**31), 2**31 - 1),
                    min_size=dag.num_nodes,
                    max_size=dag.num_nodes,
                )
            )
        )
        expected = _snake_sorted(dag, keys)
        assert np.array_equal(replay(dag, keys), expected)
        assert np.array_equal(round_plan(dag).run(keys), expected)
        assert np.array_equal(compile_schedule(dag).run(keys), expected)

    @pytest.mark.parametrize(
        "cell", [c for c in DEFAULT_MATRIX if c.backend == "lattice"],
        ids=[c.key for c in DEFAULT_MATRIX if c.backend == "lattice"],
    )
    @given(data=st.data())
    @settings(max_examples=5, deadline=None)
    def test_lattice_backend_interprets_the_same_artifact(self, cell, data):
        sorter = ProductNetworkSorter.for_factor(cell.build_factor(), cell.r)
        dag = sorter.schedule()
        keys = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, 10**6),
                    min_size=dag.num_nodes,
                    max_size=dag.num_nodes,
                )
            )
        )
        lattice, ledger = sorter.sort_sequence(keys)
        assert np.array_equal(np.ravel(lattice), _snake_sorted(dag, keys))
        # the interpreted ledger equals the phase list's charges
        assert ledger.total_rounds == dag.depth

    @pytest.mark.parametrize(
        "cell", [c for c in DEFAULT_MATRIX if c.backend == "machine"],
        ids=[c.key for c in DEFAULT_MATRIX if c.backend == "machine"],
    )
    def test_machine_backend_interprets_the_same_artifact(self, cell, rng):
        sorter = MachineSorter.for_factor(cell.build_factor(), cell.r)
        dag = sorter.schedule()
        keys = rng.integers(0, 2**31, size=dag.num_nodes)
        machine, ledger = sorter.sort(keys)
        assert np.array_equal(machine.keys, replay(dag, keys))
        assert machine.rounds == ledger.total_rounds == dag.depth


class TestCompiledBatch:
    def test_batch_axis_thousand_rows_one_pass(self, rng):
        """>= 1000 independent lattices sorted in one compiled call."""
        cell = next(c for c in DEFAULT_MATRIX if c.key == "path-n3-r3-lattice")
        dag = _emit(cell)
        batch = rng.integers(0, 2**31, size=(1024, dag.num_nodes))
        out = compile_schedule(dag).run(batch)
        assert out.shape == batch.shape
        assert np.array_equal(out, _snake_sorted(dag, batch))
        # and the per-round plan agrees row for row
        assert np.array_equal(out, round_plan(dag).run(batch))

    def test_packing_never_worse_and_semantics_identical(self, rng):
        dag = _emit(next(c for c in DEFAULT_MATRIX if c.key == "k2-n2-r4-lattice"))
        packed = compile_schedule(dag)
        unpacked = round_plan(dag)
        # the emitted schedules are already near-maximally parallel; ASAP
        # packing may only fold layers, never split them
        assert packed.num_layers <= unpacked.num_layers <= len(dag.rounds)
        batch = rng.integers(0, 100, size=(64, dag.num_nodes))
        assert np.array_equal(packed.run(batch), unpacked.run(batch))

    def test_asap_packing_folds_independent_rounds(self):
        """Comparators from different rounds touching disjoint nodes land in
        one packed layer (and stay separate in the per-round plan)."""
        from repro.schedule import ComparatorOp, SchedulePhase, ScheduleRound

        phases = tuple(
            SchedulePhase(index=i, path=("sort", f"p{i}"), kind="routing",
                          dim=None, charged_rounds=1)
            for i in range(2)
        )
        rounds = (
            ScheduleRound(index=0, phase=0, charge=1,
                          comparators=(ComparatorOp(0, 1),)),
            ScheduleRound(index=1, phase=1, charge=1,
                          comparators=(ComparatorOp(2, 3),)),
        )
        dag = ComparatorDAG(backend="lattice", factor="synthetic", n=2, r=2,
                            num_nodes=4, phases=phases, rounds=rounds)
        assert compile_schedule(dag).num_layers == 1
        assert round_plan(dag).num_layers == 2
        out = compile_schedule(dag).run(np.array([3, 1, 9, 4]))
        assert np.array_equal(out, [1, 3, 4, 9])

    def test_kernel_cache_is_keyed_by_schedule_hash(self):
        dag = _emit(DEFAULT_MATRIX[0])
        assert compile_schedule(dag) is compile_schedule(dag)
        assert compile_schedule(dag).schedule_hash == dag.schedule_hash()
        assert compile_schedule(dag) is not round_plan(dag)

    def test_rejects_wrong_width(self):
        dag = _emit(DEFAULT_MATRIX[0])
        with pytest.raises(ValueError, match="keys per row"):
            compile_schedule(dag).run(np.zeros(dag.num_nodes + 1))


class TestEmission:
    def test_emission_is_keyless_and_cached(self):
        cell = DEFAULT_MATRIX[0]
        assert _emit(cell) is _emit(cell)

    def test_machine_emission_cached_per_cell(self):
        cell = next(c for c in DEFAULT_MATRIX if c.backend == "machine")
        sorter = MachineSorter.for_factor(cell.build_factor(), cell.r)
        assert sorter.emitted_schedule() is sorter.emitted_schedule()
        assert sorter.schedule().meta.get("emitted") is True

    def test_emitted_hashes_reproduce_the_blessed_seed(self):
        """The byte-identity acceptance criterion: fresh emissions equal the
        hashes pinned in BENCH_seed.json on every canonical cell."""
        with open(os.path.join(REPO_ROOT, "BENCH_seed.json")) as fh:
            pinned = {c["cell"]: c["schedule_hash"] for c in json.load(fh)["cells"]}
        for cell in DEFAULT_MATRIX:
            assert _emit(cell).schedule_hash() == pinned[cell.key], cell.key

    def test_subclass_overriding_movement_skips_the_schedule_path(self, rng):
        """Sabotage-style subclasses must run the real recursion, not the
        emitted schedule of the unmodified algorithm."""

        class _Tweaked(ProductNetworkSorter):
            def _sort2_data(self, block, descending):
                super()._sort2_data(block, descending)

        sorter = _Tweaked.for_factor(DEFAULT_MATRIX[0].build_factor(), 2)
        assert not sorter._uses_stock_schedule()
        stock = ProductNetworkSorter.for_factor(DEFAULT_MATRIX[0].build_factor(), 2)
        assert stock._uses_stock_schedule()
        keys = rng.integers(0, 100, size=stock.network.num_nodes)
        assert np.array_equal(
            np.ravel(sorter.sort_sequence(keys).lattice),
            np.ravel(stock.sort_sequence(keys).lattice),
        )
