"""Tests for the serving layer: micro-batched service, front-end, loadgen.

Covers deadline-aware micro-batching (flush on ``max_batch`` or
``max_delay_ms``), admission control and explicit backpressure under
overload (arrival rate > service rate, no deadlock), snake-order
correctness of every response, the ``repro_serve_*`` telemetry and
``kind="serve"`` span discipline, the HTTP front-end mounted on the
metrics server, the open-loop load generator, and the ``repro serve`` /
``repro loadgen`` CLI surface.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer
from repro.schedule import snake_order_nodes
from repro.serve import (
    ARRIVALS,
    MIXES,
    LoadScenario,
    Rejected,
    ServiceConfig,
    SortService,
    arrival_offsets,
    build_sort_server,
    default_scenarios,
    make_keys,
    run_loadgen,
)

CELL = "path-n3-r3"
WIDTH = 27  # 3**3 nodes


def _expected(row: np.ndarray) -> np.ndarray:
    out = np.empty_like(row)
    out[snake_order_nodes(3, 3)] = np.sort(row)
    return out


def _run(coro):
    return asyncio.run(coro)


class TestServiceConfig:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.max_batch >= 1 and config.max_queue_depth >= 1
        assert config.to_json()["max_batch"] == config.max_batch

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay_ms": -1.0},
            {"max_queue_depth": 0},
            {"deadline_ms": 0.0},
            {"flush_penalty_s": -0.1},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestSortService:
    def test_single_request_sorts_to_snake_order(self, rng):
        async def scenario():
            async with SortService(ServiceConfig(max_delay_ms=0.5)) as service:
                keys = rng.integers(0, 1000, WIDTH)
                out = await service.submit(CELL, keys)
                assert np.array_equal(out, _expected(keys))

        _run(scenario())

    def test_optimized_service_serves_the_same_snake_order(self, rng):
        # opt-in certified-optimizer kernels: fewer layers, same answers
        async def scenario():
            config = ServiceConfig(max_delay_ms=0.5, optimize=True)
            assert config.to_json()["optimize"] is True
            async with SortService(config) as service:
                service.prewarm(CELL)
                keys = rng.integers(0, 1000, WIDTH)
                out = await service.submit(CELL, keys)
                assert np.array_equal(out, _expected(keys))

        _run(scenario())

    def test_full_batch_flushes_without_waiting_for_the_deadline(self, rng):
        """max_batch requests coalesce into exactly one kernel flush."""
        registry = MetricsRegistry()
        config = ServiceConfig(max_batch=8, max_delay_ms=10_000.0)

        async def scenario():
            async with SortService(config, registry=registry) as service:
                rows = [rng.integers(0, 1000, WIDTH) for _ in range(8)]
                outs = await asyncio.wait_for(
                    asyncio.gather(*(service.submit(CELL, row) for row in rows)),
                    timeout=5.0,  # far below max_delay: only max_batch can flush it
                )
                for row, out in zip(rows, outs):
                    assert np.array_equal(out, _expected(row))
                return service.queues_snapshot()

        snapshot = _run(scenario())
        (queue,) = snapshot.values()
        assert queue["batches"] == 1
        assert queue["completed"] == 8
        assert queue["mean_batch_occupancy"] == pytest.approx(1.0)

    def test_partial_batch_flushes_at_the_deadline(self, rng):
        """A lone request completes after ~max_delay even below max_batch."""

        async def scenario():
            async with SortService(ServiceConfig(max_batch=64, max_delay_ms=5.0)) as service:
                out = await asyncio.wait_for(
                    service.submit(CELL, rng.integers(0, 1000, WIDTH)), timeout=5.0
                )
                assert out.shape == (WIDTH,)
                return service.queues_snapshot()

        snapshot = _run(scenario())
        (queue,) = snapshot.values()
        assert queue["batches"] == 1
        assert queue["mean_batch_occupancy"] < 1.0

    def test_wrong_width_raises_value_error(self):
        async def scenario():
            async with SortService() as service:
                with pytest.raises(ValueError, match="27-key vectors"):
                    await service.submit(CELL, np.arange(5))

        _run(scenario())

    def test_unknown_cell_raises_value_error(self):
        async def scenario():
            async with SortService() as service:
                with pytest.raises(ValueError, match="unknown profile cell"):
                    await service.submit("moebius-n9-r9", np.arange(WIDTH))

        _run(scenario())

    def test_overload_sheds_explicitly_without_deadlock(self, rng):
        """Arrival rate >> service rate: excess requests get Rejected with a
        counted reason; admitted requests still complete; nothing hangs."""
        registry = MetricsRegistry()
        config = ServiceConfig(
            max_batch=4, max_delay_ms=0.5, max_queue_depth=6, flush_penalty_s=0.05
        )

        async def scenario():
            async with SortService(config, registry=registry) as service:
                rows = [rng.integers(0, 1000, WIDTH) for _ in range(40)]
                results = await asyncio.wait_for(
                    asyncio.gather(
                        *(service.submit(CELL, row) for row in rows),
                        return_exceptions=True,
                    ),
                    timeout=10.0,
                )
                completed = [
                    (row, out)
                    for row, out in zip(rows, results)
                    if not isinstance(out, BaseException)
                ]
                rejected = [r for r in results if isinstance(r, Rejected)]
                unexpected = [
                    r
                    for r in results
                    if isinstance(r, BaseException) and not isinstance(r, Rejected)
                ]
                assert not unexpected
                assert rejected, "overload must shed"
                assert completed, "admitted requests must still complete"
                assert all(r.reason == "queue_full" for r in rejected)
                for row, out in completed:
                    assert np.array_equal(out, _expected(row))
                return len(rejected), service.queues_snapshot()

        shed, snapshot = _run(scenario())
        (queue,) = snapshot.values()
        assert queue["rejected"] == shed
        assert queue["completed"] + queue["rejected"] == 40
        # rejections are visible on the exposition surface too
        text = registry.expose_text()
        assert 'repro_serve_rejections_total{cell="path(3)-n3-r3",reason="queue_full"}' in text

    def test_closed_service_rejects_with_shutting_down(self, rng):
        async def scenario():
            service = SortService()
            async with service:
                await service.submit(CELL, rng.integers(0, 1000, WIDTH))
            with pytest.raises(Rejected) as excinfo:
                await service.submit(CELL, rng.integers(0, 1000, WIDTH))
            assert excinfo.value.reason == "shutting_down"

        _run(scenario())

    def test_cell_name_aliases_share_one_queue(self, rng):
        async def scenario():
            async with SortService(ServiceConfig(max_delay_ms=0.5)) as service:
                await service.submit("path-n3-r3", rng.integers(0, 1000, WIDTH))
                await service.submit("path-n3-r3-lattice", rng.integers(0, 1000, WIDTH))
                assert service.cells == ("path(3)-n3-r3",)
                return service.queues_snapshot()

        snapshot = _run(scenario())
        assert snapshot["path(3)-n3-r3"]["completed"] == 2

    def test_deadline_misses_are_counted(self, rng):
        config = ServiceConfig(max_delay_ms=5.0, deadline_ms=0.001)

        async def scenario():
            async with SortService(config) as service:
                await service.submit(CELL, rng.integers(0, 1000, WIDTH))
                return service.queues_snapshot()

        snapshot = _run(scenario())
        assert snapshot["path(3)-n3-r3"]["deadline_misses"] == 1

    def test_serve_metrics_reach_the_exposition_surface(self, rng):
        registry = MetricsRegistry()

        async def scenario():
            async with SortService(ServiceConfig(max_delay_ms=0.5), registry=registry) as service:
                await service.submit(CELL, rng.integers(0, 1000, WIDTH))

        _run(scenario())
        text = registry.expose_text()
        for name in (
            "repro_serve_queue_depth",
            "repro_serve_batch_occupancy",
            "repro_serve_request_seconds",
            "repro_serve_requests_total",
            "repro_serve_batches_total",
        ):
            assert name in text, name
        # latency quantiles derive from the histogram buckets
        hist = registry.histogram("repro_serve_request_seconds", "")
        assert hist.quantile(0.99, cell="path(3)-n3-r3") > 0

    def test_serve_spans_nest_and_carry_kind_serve(self, rng):
        tracer = Tracer()

        async def scenario():
            async with SortService(
                ServiceConfig(max_batch=4, max_delay_ms=0.5), tracer=tracer
            ) as service:
                rows = [rng.integers(0, 1000, WIDTH) for _ in range(6)]
                await asyncio.gather(*(service.submit(CELL, row) for row in rows))

        _run(scenario())  # out-of-order span closes would have raised
        flushes = [s for s in tracer.iter_spans() if s.name == "serve-flush"]
        kernels = [s for s in tracer.iter_spans() if s.name == "serve-kernel"]
        assert flushes and kernels
        assert all(s.kind == "serve" for s in flushes + kernels)
        # every kernel span is a child of a flush span (arrival -> flush ->
        # kernel is reconstructable from the tree + point events)
        flush_ids = {s.span_id for s in flushes}
        assert all(k.parent_id in flush_ids for k in kernels)
        assert sum(s.attrs["batch"] for s in flushes) == 6

    def test_queues_snapshot_is_json_safe_before_any_traffic(self):
        async def scenario():
            async with SortService() as service:
                service.prewarm(CELL)
                return service.queues_snapshot()

        snapshot = _run(scenario())
        (queue,) = snapshot.values()
        assert queue["p50_ms"] is None and queue["p99_ms"] is None
        json.dumps(snapshot)  # no NaN leaks


class TestLoadgenPrimitives:
    def test_poisson_offsets_are_increasing_at_the_requested_rate(self, rng):
        scenario = LoadScenario(rate=1000.0, requests=4000, arrivals="poisson")
        offsets = arrival_offsets(scenario, rng)
        assert offsets.shape == (4000,)
        assert np.all(np.diff(offsets) >= 0)
        # mean gap ~ 1/rate (law of large numbers, generous tolerance)
        assert np.mean(np.diff(offsets)) == pytest.approx(1e-3, rel=0.25)

    def test_burst_offsets_alternate_fast_and_slow_windows(self, rng):
        scenario = LoadScenario(
            rate=1000.0, requests=640, arrivals="burst", burst_factor=16.0, burst_len=32
        )
        offsets = arrival_offsets(scenario, rng)
        gaps = np.diff(np.concatenate([[0.0], offsets]))
        window = (np.arange(640) // 32) % 2
        quiet_mean = float(np.mean(gaps[window == 0]))
        burst_mean = float(np.mean(gaps[window == 1]))
        assert quiet_mean > 4 * burst_mean

    def test_every_mix_has_the_right_shape_and_character(self, rng):
        for mix in MIXES:
            keys = make_keys(mix, rng, 16, WIDTH)
            assert keys.shape == (16, WIDTH) and keys.dtype == np.int64
        presorted = make_keys("presorted", rng, 8, WIDTH)
        assert np.all(np.diff(presorted, axis=1) >= 0)
        adversarial = make_keys("adversarial", rng, 8, WIDTH)
        assert np.all(np.diff(adversarial, axis=1) <= 0)
        duplicates = make_keys("duplicates", rng, 8, WIDTH)
        assert len(np.unique(duplicates)) <= 4

    def test_invalid_scenarios_rejected(self):
        with pytest.raises(ValueError, match="unknown key mix"):
            LoadScenario(mix="sorted-ish")
        with pytest.raises(ValueError, match="unknown arrival schedule"):
            LoadScenario(arrivals="thundering-herd")
        with pytest.raises(ValueError, match="rate"):
            LoadScenario(rate=0.0)

    def test_default_scenarios_cover_cells_mixes_and_arrivals(self):
        scenarios = default_scenarios()
        assert len(scenarios) >= 3
        assert len({s.cell for s in scenarios}) >= 2
        assert len({s.mix for s in scenarios}) >= 3
        assert {s.arrivals for s in scenarios} == set(ARRIVALS)
        assert len({s.key for s in scenarios}) == len(scenarios)


class TestRunLoadgen:
    def test_clean_run_completes_everything_verified(self):
        doc = run_loadgen(
            LoadScenario(requests=40, rate=4000.0, mix="duplicates"),
            config=ServiceConfig(max_batch=16, max_delay_ms=1.0),
        )
        counts = doc["counts"]
        assert counts == {
            "offered": 40, "completed": 40, "rejected": 0,
            "mismatches": 0, "errors": 0,
        }
        assert doc["latency_ms"]["p50"] > 0
        assert doc["completed_rps"] > 0
        assert doc["service"]["path(3)-n3-r3"]["completed"] == 40
        assert doc["config"]["max_batch"] == 16
        json.dumps(doc)

    def test_overload_run_records_shedding(self):
        doc = run_loadgen(
            LoadScenario(requests=60, rate=50_000.0, seed=3),
            config=ServiceConfig(
                max_batch=4, max_delay_ms=0.5, max_queue_depth=8, flush_penalty_s=0.02
            ),
        )
        counts = doc["counts"]
        assert counts["rejected"] > 0
        assert counts["completed"] + counts["rejected"] == 60
        assert counts["mismatches"] == 0 and counts["errors"] == 0

    def test_loadgen_feeds_a_shared_registry(self):
        registry = MetricsRegistry()
        run_loadgen(
            LoadScenario(requests=20, rate=4000.0),
            config=ServiceConfig(max_delay_ms=0.5),
            registry=registry,
        )
        assert "repro_serve_batches_total" in registry.expose_text()


@pytest.fixture()
def live_server(rng):
    """A running SortService + HTTP front-end on an ephemeral port.

    Serves from a dedicated event-loop thread (like ``repro serve``) so the
    test body can speak plain blocking HTTP.
    """
    import threading

    registry = MetricsRegistry()
    service_box: dict = {}
    started = threading.Event()
    stop: asyncio.Event | None = None

    async def amain():
        nonlocal stop
        stop = asyncio.Event()
        async with SortService(
            ServiceConfig(max_batch=8, max_delay_ms=1.0), registry=registry
        ) as service:
            loop = asyncio.get_running_loop()
            service.prewarm(CELL)
            server = build_sort_server(service, loop)
            server.start()
            service_box["service"] = service
            service_box["url"] = server.url("")
            service_box["loop"] = loop
            started.set()
            await stop.wait()
            server.stop()

    thread = threading.Thread(target=lambda: asyncio.run(amain()), daemon=True)
    thread.start()
    assert started.wait(timeout=30.0), "server failed to start"
    yield service_box
    service_box["loop"].call_soon_threadsafe(stop.set)
    thread.join(timeout=10.0)


class TestHttpFrontend:
    def _post(self, url, doc, timeout=10.0):
        request = urllib.request.Request(
            url + "/sort",
            data=json.dumps(doc).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())

    def test_post_sort_round_trip(self, live_server, rng):
        keys = rng.integers(0, 1000, WIDTH)
        status, doc = self._post(live_server["url"], {"cell": CELL, "keys": keys.tolist()})
        assert status == 200
        assert np.array_equal(np.asarray(doc["keys"]), _expected(keys))

    def test_bad_body_is_400(self, live_server):
        for payload in (b"not json", b'{"cell": "path-n3-r3"}'):
            request = urllib.request.Request(
                live_server["url"] + "/sort",
                data=payload,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10.0)
            assert excinfo.value.code == 400

    def test_wrong_width_is_400_with_the_service_message(self, live_server):
        request = urllib.request.Request(
            live_server["url"] + "/sort",
            data=json.dumps({"cell": CELL, "keys": [1, 2, 3]}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 400
        assert "27-key vectors" in json.loads(excinfo.value.read())["error"]

    def test_queues_json_reports_health(self, live_server, rng):
        keys = rng.integers(0, 1000, WIDTH)
        self._post(live_server["url"], {"cell": CELL, "keys": keys.tolist()})
        with urllib.request.urlopen(live_server["url"] + "/queues.json", timeout=10.0) as resp:
            queues = json.loads(resp.read())
        queue = queues["path(3)-n3-r3"]
        assert queue["completed"] >= 1
        assert queue["depth"] == 0

    def test_metrics_exposes_serve_instruments(self, live_server, rng):
        keys = rng.integers(0, 1000, WIDTH)
        self._post(live_server["url"], {"cell": CELL, "keys": keys.tolist()})
        with urllib.request.urlopen(live_server["url"] + "/metrics", timeout=10.0) as resp:
            text = resp.read().decode()
        assert "repro_serve_batch_occupancy_bucket" in text
        assert "repro_serve_queue_depth" in text

    def test_shed_request_maps_to_503_with_reason(self, live_server, rng):
        """A closed service rejects deterministically; the front-end turns
        the Rejected into a 503 whose body names the reason."""
        service = live_server["service"]
        loop = live_server["loop"]
        # close admission from the service's own loop thread
        fut = asyncio.run_coroutine_threadsafe(service.aclose(), loop)
        fut.result(timeout=10.0)
        request = urllib.request.Request(
            live_server["url"] + "/sort",
            data=json.dumps(
                {"cell": CELL, "keys": rng.integers(0, 1000, WIDTH).tolist()}
            ).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 503
        body = json.loads(excinfo.value.read())
        assert body["reason"] == "shutting_down"

    def test_loadgen_target_mode_drives_the_live_server(self, live_server):
        doc = run_loadgen(
            LoadScenario(requests=30, rate=3000.0, mix="adversarial"),
            target=live_server["url"],
        )
        counts = doc["counts"]
        assert counts["completed"] == 30
        assert counts["mismatches"] == 0 and counts["errors"] == 0
        # service health fetched from the live /queues.json
        assert doc["service"]["path(3)-n3-r3"]["completed"] >= 30
        assert doc["config"] is None


class TestServeCli:
    def test_loadgen_cli_text_and_exit_zero(self, capsys):
        assert main(["loadgen", "--requests", "20", "--rate", "4000"]) == 0
        out = capsys.readouterr().out
        assert "offered=20 completed=20 rejected=0" in out
        assert "queue path(3)-n3-r3" in out

    def test_loadgen_cli_json_document(self, capsys, tmp_path):
        out_path = tmp_path / "loadgen.json"
        assert main(
            ["loadgen", "--requests", "15", "--rate", "4000", "--mix", "presorted",
             "--json", "--out", str(out_path)]
        ) == 0
        doc = json.loads(out_path.read_text())
        assert doc["counts"]["completed"] == 15
        assert doc["scenario"]["mix"] == "presorted"

    def test_loadgen_cli_overload_still_exits_zero(self, capsys):
        """Shedding is the designed overload response, not a failure."""
        assert main(
            ["loadgen", "--requests", "40", "--rate", "50000",
             "--max-queue-depth", "6", "--max-batch", "4",
             "--max-delay-ms", "0.5", "--flush-penalty", "0.02", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["rejected"] > 0

    def test_loadgen_cli_rejects_bad_scenario(self, capsys):
        assert main(["loadgen", "--rate", "-5"]) == 2
        assert "rate" in capsys.readouterr().err

    def test_serve_parser_wiring(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--cell", "path-n3-r3", "--max-batch", "16"]
        )
        assert args.max_batch == 16 and args.port == 0
        args = build_parser().parse_args(["loadgen", "--arrivals", "burst"])
        assert args.arrivals == "burst"


class TestHealthEndpoints:
    """Satellite: liveness (`/healthz`) vs readiness (`/readyz`) split."""

    def test_live_server_is_healthy_and_ready(self, live_server):
        for path, expect in (("/healthz", b"ok"), ("/readyz", b"ok")):
            with urllib.request.urlopen(live_server["url"] + path, timeout=5.0) as resp:
                assert resp.status == 200
                assert resp.read().strip() == expect

    def test_shutdown_flips_readyz_but_not_healthz(self):
        """During drain the process is alive (liveness 200) but must be
        pulled from rotation (readiness 503 with the reason)."""
        import threading

        box: dict = {}
        started = threading.Event()
        drained = threading.Event()
        done = threading.Event()

        async def amain():
            service = SortService(ServiceConfig(max_delay_ms=1.0))
            await service.__aenter__()
            loop = asyncio.get_running_loop()
            server = build_sort_server(service, loop)
            server.start()
            box["url"] = server.url("")
            started.set()
            await asyncio.get_running_loop().run_in_executor(None, drained.wait)
            await service.__aexit__(None, None, None)
            box["closed"] = True
            done.set()
            await asyncio.get_running_loop().run_in_executor(None, box["stop"].wait)
            server.stop()

        box["stop"] = threading.Event()
        thread = threading.Thread(target=lambda: asyncio.run(amain()), daemon=True)
        thread.start()
        assert started.wait(timeout=30.0)

        def get(path):
            try:
                with urllib.request.urlopen(box["url"] + path, timeout=5.0) as resp:
                    return resp.status, resp.read()
            except urllib.error.HTTPError as err:
                return err.code, err.read()

        assert get("/readyz")[0] == 200
        drained.set()
        assert done.wait(timeout=30.0)
        status, body = get("/readyz")
        assert status == 503 and b"shutting down" in body
        # liveness is about the process, not the service: still 200
        assert get("/healthz")[0] == 200
        box["stop"].set()
        thread.join(timeout=10.0)


class TestServerSideLatency:
    """Satellite: loadgen surfaces the server's own latency histograms."""

    def test_clean_run_reports_consistent_server_percentiles(self):
        doc = run_loadgen(
            LoadScenario(requests=40, rate=2000.0),
            config=ServiceConfig(max_batch=16, max_delay_ms=1.0),
        )
        srv = doc["server_latency_ms"]
        assert set(srv["request"]) == {"p50", "p99"}
        assert set(srv["queue_wait"]) == {"p50", "p99"}
        assert 0 < srv["request"]["p50"] <= srv["request"]["p99"]
        # fresh registry + zero errors: the server-vs-client invariant holds
        assert srv["consistent"] is True
        # the invariant compares like with like: both sides bucketed
        assert srv["request"]["p99"] <= srv["client_bucketed"]["p99"] + 1e-9

    def test_queues_snapshot_carries_queue_wait_percentiles(self, rng):
        async def scenario():
            async with SortService(ServiceConfig(max_delay_ms=0.5)) as service:
                keys = rng.integers(0, 1000, WIDTH)
                await service.submit(CELL, keys.astype(np.int64))
                return service.queues_snapshot()

        snap = _run(scenario())
        q = snap["path(3)-n3-r3"]
        assert q["queue_wait_p50_ms"] is not None
        assert q["queue_wait_p99_ms"] >= q["queue_wait_p50_ms"]

    def test_shared_registry_disables_the_invariant(self):
        """A reused registry carries older samples, so the server-vs-client
        comparison is reported but not asserted (consistent is None)."""
        registry = MetricsRegistry()
        run_loadgen(LoadScenario(requests=10, rate=2000.0), registry=registry)
        doc = run_loadgen(LoadScenario(requests=10, rate=2000.0), registry=registry)
        assert doc["server_latency_ms"]["consistent"] is None


class TestServeSloCli:
    """CLI wiring for the flight recorder (`--slo` on serve and loadgen)."""

    def test_loadgen_slo_flag_prints_the_slo_line(self, capsys):
        assert main(["loadgen", "--requests", "20", "--rate", "4000", "--slo"]) == 0
        out = capsys.readouterr().out
        assert "slo: severity=ok" in out
        assert "server[path(3)-n3-r3]" in out
        assert "server p99 <= client p99: yes" in out

    def test_loadgen_slo_json_carries_the_snapshot(self, capsys):
        assert main(
            ["loadgen", "--requests", "20", "--rate", "4000", "--slo", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["slo"]["page_alerts"] == 0
        assert [a["spec"]["name"] for a in doc["slo"]["alerts"]] == [
            "serve-availability", "serve-request-p99",
            "serve-deadline-misses", "serve-queue-wait-p99",
        ]

    def test_serve_parser_accepts_slo_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--slo", "--slo-scale", "0.5"])
        assert args.slo is True and args.slo_scale == 0.5
        assert build_parser().parse_args(["serve"]).slo is False
        args = build_parser().parse_args(
            ["dash", "--target", "http://x/", "--watch", "1.5"]
        )
        assert args.target == "http://x/" and args.watch == 1.5
