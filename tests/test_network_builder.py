"""Tests for the §3.2 comparator-network compilation of the multiway merge."""

from __future__ import annotations

import random
from itertools import product as iproduct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.batcher import (
    network_depth,
    network_size,
    odd_even_merge_sort_network,
)
from repro.core.machine_sort import MachineSorter
from repro.core.network_builder import (
    batcher_base,
    multiway_merge_network,
    multiway_sort_network,
    transposition_base,
)
from repro.core.verification import zero_one_sequences
from repro.graphs import k2


class TestMergeNetwork:
    @pytest.mark.parametrize("n,k", [(2, 3), (2, 4), (3, 3)])
    def test_all_zero_one_merge_instances(self, n, k):
        net = multiway_merge_network(n, k)
        m = n ** (k - 1)
        for zeros in iproduct(range(m + 1), repeat=n):
            keys: list[int] = []
            for z in zeros:
                keys += [0] * z + [1] * (m - z)
            assert net.apply(keys) == sorted(keys)

    def test_random_keys(self):
        rng = random.Random(3)
        net = multiway_merge_network(3, 3)
        for _ in range(50):
            keys: list[int] = []
            for _ in range(3):
                keys += sorted(rng.randrange(50) for _ in range(9))
            assert net.apply(keys) == sorted(keys)

    def test_layers_are_parallel(self):
        multiway_merge_network(3, 3).validate_layers()
        multiway_merge_network(2, 5).validate_layers()

    def test_validation(self):
        with pytest.raises(ValueError):
            multiway_merge_network(2, 2)
        with pytest.raises(ValueError):
            multiway_merge_network(1, 3)


class TestSortNetwork:
    @pytest.mark.parametrize("n,r", [(2, 2), (2, 3), (2, 4), (3, 2)])
    def test_zero_one_exhaustive(self, n, r):
        """Full zero-one-principle exhaustion: these widths are proofs."""
        net = multiway_sort_network(n, r)
        for bits in zero_one_sequences(n**r):
            assert net.apply(bits) == sorted(bits)

    def test_larger_instances_random(self):
        rng = random.Random(9)
        for n, r in [(3, 3), (4, 2), (2, 5)]:
            net = multiway_sort_network(n, r)
            for _ in range(30):
                keys = [rng.randrange(100) for _ in range(n**r)]
                assert net.apply(keys) == sorted(keys)

    @given(st.lists(st.integers(-50, 50), min_size=16, max_size=16))
    @settings(max_examples=40)
    def test_property_16(self, keys):
        assert multiway_sort_network(2, 4).apply(keys) == sorted(keys)

    def test_transposition_base(self):
        rng = random.Random(4)
        net = multiway_sort_network(3, 2, base=transposition_base)
        for _ in range(30):
            keys = [rng.randrange(40) for _ in range(9)]
            assert net.apply(keys) == sorted(keys)

    def test_batcher_base_requires_power_of_two(self):
        with pytest.raises(ValueError):
            batcher_base([0, 1, 2])

    def test_validation(self):
        with pytest.raises(ValueError):
            multiway_sort_network(2, 1)


class TestNormalization:
    def test_normalized_is_standard_network(self):
        rng = random.Random(5)
        net = multiway_sort_network(2, 4).normalized()
        assert net.order == tuple(range(16))
        for bits in zero_one_sequences(10):
            padded = list(bits) + [0] * 6
            rng.shuffle(padded)
            assert net.apply(padded) == sorted(padded)

    def test_normalization_preserves_depth_and_size(self):
        net = multiway_sort_network(3, 2)
        norm = net.normalized()
        assert (net.depth, net.size) == (norm.depth, norm.size)

    def test_apply_validates_width(self):
        with pytest.raises(ValueError):
            multiway_sort_network(2, 3).apply([1, 2, 3])


class TestDepthSemantics:
    @pytest.mark.parametrize("r", [2, 3, 4, 5])
    def test_depth_equals_machine_rounds_on_hypercube(self, r, rng):
        """The compiled network's depth IS the parallel time: it equals the
        fine-grained machine's measured rounds for the same (N=2) algorithm
        — Steps 1/3 contribute no layers, transpositions one layer each."""
        net = multiway_sort_network(2, r)
        keys = rng.integers(0, 1000, size=2**r)
        _, ledger = MachineSorter.for_factor(k2(), r).sort(keys)
        assert net.depth == ledger.total_rounds

    def test_shallower_than_transposition_sort_at_scale(self):
        """O(r^2) depth beats transposition sort's 2^r depth once r >= 8
        (the crossover: depth 183 < 256 wires at r = 8, but 91 > 64 at
        r = 6 — quadratic constants need scale to win)."""
        assert multiway_sort_network(2, 6).depth > 2**6
        assert multiway_sort_network(2, 8).depth < 2**8

    def test_batcher_constant_factor(self):
        """Same O(log^2) depth class as Batcher, constant factor <= 8."""
        for r in (4, 5, 6):
            ours = multiway_sort_network(2, r)
            batcher = odd_even_merge_sort_network(2**r)
            assert ours.depth <= 8 * network_depth(batcher)
            assert ours.size <= 8 * network_size(batcher)
