"""Tests for the plain-text visualisation helpers."""

from __future__ import annotations

import numpy as np

from repro.core.network_builder import multiway_sort_network
from repro.graphs import complete_binary_tree, path_graph, petersen_graph
from repro.viz import (
    render_comparator_network,
    render_factor_graph,
    render_lattice,
    render_merge_trace,
    render_snake_path,
    snake_label_grid,
)


class TestRenderLattice:
    def test_1d(self):
        assert render_lattice(np.array([3, 1, 2])) == "3 1 2"

    def test_2d_alignment(self):
        out = render_lattice(np.array([[1, 22], [333, 4]]))
        lines = out.splitlines()
        assert lines[0] == "  1  22"
        assert lines[1] == "333   4"

    def test_3d_has_captions(self):
        lat = np.arange(27).reshape(3, 3, 3)
        out = render_lattice(lat)
        assert "[0]PG_2:" in out and "[2]PG_2:" in out
        assert out.count("PG_2:") == 3

    def test_4d_prefix_captions(self):
        lat = np.arange(16).reshape(2, 2, 2, 2)
        out = render_lattice(lat)
        assert "[0,1]PG_2:" in out and "[1,0]PG_2:" in out


class TestSnakePath:
    def test_three_by_three(self):
        out = render_snake_path(3)
        lines = out.splitlines()
        assert lines[0].startswith("> 0 -> 1 -> 2")
        assert lines[1].startswith("< 5 <- 4 <- 3")
        assert lines[2].startswith("> 6 -> 7 -> 8")
        assert lines[2].endswith(".")

    def test_even_n(self):
        out = render_snake_path(2)
        assert "0" in out and "3" in out


class TestMergeTrace:
    def test_captions_applied(self):
        states = {"evt": np.arange(9).reshape(3, 3)}
        out = render_merge_trace(states, captions={"evt": "Fig. X"})
        assert "--- Fig. X ---" in out
        out2 = render_merge_trace(states)
        assert "--- evt ---" in out2


class TestComparatorDiagram:
    def test_single_comparator(self):
        out = render_comparator_network([[(0, 2)]], 3)
        lines = out.splitlines()
        assert lines[0].count("o") == 1
        assert lines[1].count("|") == 1
        assert lines[2].count("o") == 1

    def test_overlapping_comparators_split_columns(self):
        # (0,2) and (1,3) overlap visually -> need two columns
        out = render_comparator_network([[(0, 2), (1, 3)]], 4)
        assert all(len(line) == len(out.splitlines()[0]) for line in out.splitlines())
        # both comparators rendered
        assert out.count("o") == 4

    def test_real_network_renders(self):
        net = multiway_sort_network(2, 2)
        out = render_comparator_network(net.layers, net.width)
        assert len(out.splitlines()) == 4


class TestFactorGraph:
    def test_hamiltonian_annotation(self):
        out = render_factor_graph(path_graph(4))
        assert "labels follow a Hamiltonian path" in out

    def test_non_hamiltonian_annotation(self):
        out = render_factor_graph(complete_binary_tree(2))
        assert "dilation-" in out

    def test_path_exists_but_unlabelled(self):
        out = render_factor_graph(petersen_graph())
        assert "labels do not follow" in out

    def test_adjacency_lines(self):
        out = render_factor_graph(path_graph(3))
        assert "  1: 0 2" in out


class TestSnakeLabelGrid:
    def test_matches_gray_order(self):
        out = snake_label_grid(3, 2)
        assert out.splitlines() == ["00 01 02", "12 11 10", "20 21 22"]
