"""Tests for compiled-path observability: profiler, caches, /metrics.

Pins the tentpole contracts of the kernel-profiler PR:

* profiling never changes results (profiled output == bare output == snake
  ground truth) and costs ~nothing when disabled;
* percentiles derived from histogram buckets are the Prometheus
  interpolation, verified on known samples;
* the schedule caches account hits/misses/build time correctly and are
  resettable for test isolation (``clear_caches`` + the fixture);
* the live HTTP endpoint serves valid exposition text carrying
  ``repro_compiled_run_seconds`` and the cache counters after one profiled
  run.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cli import main
from repro.observability.cachestats import CacheStats, all_cache_stats, publish_cache_metrics
from repro.observability.httpexpo import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsServer,
    build_metrics_server,
)
from repro.observability.kernelprof import (
    KernelProfiler,
    profile_cell,
    profile_chrome_trace,
    render_profile,
    resolve_profile_cell,
)
from repro.observability.metrics import Histogram, MetricsRegistry, quantile_from_buckets
from repro.schedule import (
    cache_stats,
    clear_caches,
    compile_schedule,
    get_profiler,
    snake_order_nodes,
)
from repro.staticcheck import emit_schedule


def _kernel(key: str = "path-n3-r3", packed: bool = True):
    cell = resolve_profile_cell(key)
    dag = emit_schedule(cell.build_factor(), cell.r, backend=cell.backend)
    return compile_schedule(dag, packed=packed), dag


class TestKernelProfiler:
    def test_profiled_output_matches_bare_and_ground_truth(self, rng):
        kernel, dag = _kernel()
        keys = rng.integers(0, 2**31, size=(32, dag.num_nodes))
        expected = np.empty_like(keys)
        expected[:, snake_order_nodes(dag.n, dag.r)] = np.sort(keys, axis=1)
        profiler = KernelProfiler()
        out, profile = profiler.run(kernel, keys)
        assert np.array_equal(out, expected)
        assert np.array_equal(out, kernel.run(keys))
        assert profile.batch == 32 and profile.num_nodes == dag.num_nodes
        assert profile.keys == 32 * dag.num_nodes

    def test_per_layer_accounting(self, rng):
        kernel, dag = _kernel()
        keys = rng.integers(0, 2**31, size=(8, dag.num_nodes))
        _, profile = KernelProfiler().run(kernel, keys)
        assert len(profile.layers) == kernel.num_layers
        assert all(layer.wall_ns > 0 for layer in profile.layers)
        assert profile.op_count == sum(layer.op_count for layer in kernel.layers)
        # occupancy: comparator-slot utilisation against floor(N/2) slots
        slots = dag.num_nodes // 2
        for layer in profile.layers:
            assert layer.occupancy == pytest.approx(layer.nodes_touched / 2 / slots)
            assert 0 < layer.occupancy <= dag.num_nodes / 2 / slots
            assert layer.bytes_touched == 2 * 8 * layer.nodes_touched * keys.itemsize
        assert profile.wall_ns >= sum(layer.wall_ns for layer in profile.layers)
        assert 0 < profile.keys_per_s < float("inf")

    def test_registry_instruments_populated(self, rng):
        kernel, dag = _kernel()
        registry = MetricsRegistry()
        profiler = KernelProfiler(registry=registry)
        keys = rng.integers(0, 2**31, size=(4, dag.num_nodes))
        profiler.run(kernel, keys)
        profiler.run(kernel, keys)
        assert registry.counter("repro_compiled_keys_total").value(cell=kernel.cell) == (
            2 * 4 * dag.num_nodes
        )
        series = registry.histogram("repro_compiled_run_seconds").snapshot_series(
            cell=kernel.cell, packed="packed"
        )
        assert series["count"] == 2
        text = registry.expose_text()
        assert "repro_compiled_run_seconds_bucket" in text
        assert 'packed="packed"' in text

    def test_install_routes_compiled_runs_through_the_profiler(self, rng):
        kernel, dag = _kernel()
        keys = rng.integers(0, 2**31, size=dag.num_nodes)
        profiler = KernelProfiler()
        assert get_profiler() is None
        with profiler:
            assert get_profiler() is profiler
            out = kernel.run(keys)  # 1-D input: squeeze path through the hook
        assert get_profiler() is None
        assert profiler.last_profile is not None
        assert profiler.last_profile.batch == 1
        assert out.shape == keys.shape
        # history capped by maxlen, newest kept
        assert profiler.history[-1] is profiler.last_profile

    def test_disabled_profiler_overhead_is_noise(self, rng):
        """The near-zero-overhead contract: with a profiler installed but
        disabled, ``run`` takes one extra attribute check — bounded here at
        2x the bare path plus absolute slack, both generous against timer
        jitter."""
        kernel, dag = _kernel()
        keys = rng.integers(0, 2**31, size=(64, dag.num_nodes))
        kernel.run(keys)  # warm

        def best_of(n: int) -> float:
            best = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                kernel.run(keys)
                best = min(best, time.perf_counter() - t0)
            return best

        bare = best_of(20)
        profiler = KernelProfiler(enabled=False)
        with profiler:
            disabled = best_of(20)
        assert profiler.last_profile is None  # disabled = no capture
        assert disabled <= bare * 2.0 + 5e-4, (bare, disabled)

    def test_tracer_spans_and_chrome_export(self, rng):
        from repro.observability import Tracer, chrome_trace_json

        kernel, dag = _kernel()
        tracer = Tracer()
        profiler = KernelProfiler(tracer=tracer)
        profiler.run(kernel, rng.integers(0, 100, size=(2, dag.num_nodes)))
        assert tracer.count("compiled-run", kind="kernel") == 1
        assert tracer.count("kernel-layer", kind="kernel") == kernel.num_layers
        events = json.loads(chrome_trace_json(tracer))["traceEvents"]
        assert any(e.get("name") == "kernel-layer" and e["ph"] == "X" for e in events)

    def test_quantiles_from_profiler_histogram(self, rng):
        kernel, dag = _kernel()
        profiler = KernelProfiler()
        keys = rng.integers(0, 2**31, size=(4, dag.num_nodes))
        for _ in range(5):
            profiler.run(kernel, keys)
        pct = profiler.percentiles(kernel.cell, packed=True)
        assert 0 < pct["p50"] <= pct["p99"]
        # unprofiled plan/cell: NaN, not a crash
        assert np.isnan(profiler.run_quantile(0.5, "no-such-cell"))


class TestHistogramQuantiles:
    def test_known_samples_interpolate_exactly(self):
        h = Histogram("t_seconds", buckets=(1.0, 2.0, 4.0, 8.0))
        for v in (0.5, 1.5, 3.0, 7.0):
            h.observe(v)
        # target rank 2 of 4 lands at the top of the (1, 2] bucket
        assert h.quantile(0.5) == pytest.approx(2.0)
        assert h.quantile(0.25) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(8.0)
        assert h.quantile(0.0) == pytest.approx(0.0)

    def test_uniform_samples_match_numpy_percentile_roughly(self):
        h = Histogram("u_seconds", buckets=tuple(float(b) for b in range(1, 101)))
        values = list(range(1, 101))
        for v in values:
            h.observe(v)
        # exact on bucket edges: every value is its own bucket upper bound
        assert h.quantile(0.5) == pytest.approx(50.0)
        assert h.quantile(0.99) == pytest.approx(99.0)

    def test_overflow_and_empty_series(self):
        h = Histogram("o_seconds", buckets=(1.0, 2.0))
        assert np.isnan(h.quantile(0.5))
        h.observe(100.0)  # lands in +Inf
        assert h.quantile(0.99) == pytest.approx(2.0)  # largest finite bound
        with pytest.raises(ValueError, match="quantile"):
            quantile_from_buckets((1.0,), [1], 1.5)

    def test_labelled_series_are_independent(self):
        h = Histogram("l_seconds", buckets=(1.0, 2.0, 4.0))
        h.observe(0.5, cell="a")
        h.observe(3.5, cell="b")
        assert h.quantile(0.5, cell="a") <= 1.0
        assert h.quantile(0.5, cell="b") > 2.0
        assert np.isnan(h.quantile(0.5, cell="c"))


class TestCacheStats:
    def test_hit_miss_accounting_across_compiles(self, schedule_caches):
        _, dag = _kernel()  # compiles the packed plan once: 1 miss
        before = cache_stats()["compiled-kernels"]
        k1 = compile_schedule(dag)
        k2 = compile_schedule(dag)
        k3 = compile_schedule(dag, packed=False)
        assert k1 is k2 and k1 is not k3
        after = cache_stats()["compiled-kernels"]
        assert after["misses"] == before["misses"] + 1  # the per-round plan
        assert after["hits"] == before["hits"] + 2
        assert after["size"] == 2
        assert after["build_seconds"] > 0
        assert 0 < after["hit_rate"] < 1

    def test_emission_caches_account_hits(self, schedule_caches):
        cell = resolve_profile_cell("path-n3-r3")
        emit_schedule(cell.build_factor(), cell.r, backend=cell.backend)
        emit_schedule(cell.build_factor(), cell.r, backend=cell.backend)
        snap = cache_stats()["lattice-emission"]
        assert snap["misses"] == 1 and snap["hits"] == 1 and snap["size"] == 1

    def test_clear_caches_resets_everything(self, schedule_caches):
        _, dag = _kernel()
        compile_schedule(dag)
        clear_caches()
        for snap in cache_stats().values():
            assert snap["lookups"] == 0 and snap["size"] == 0
            assert snap["build_seconds"] == 0.0

    def test_publish_cache_metrics_is_idempotent(self, schedule_caches):
        _, dag = _kernel()  # 1 miss
        compile_schedule(dag)
        compile_schedule(dag)  # 2 hits
        registry = MetricsRegistry()
        publish_cache_metrics(registry)
        publish_cache_metrics(registry)  # second publish must not double-count
        hits = registry.counter("repro_schedule_cache_hits_total")
        misses = registry.counter("repro_schedule_cache_misses_total")
        assert hits.value(cache="compiled-kernels") == 2
        assert misses.value(cache="compiled-kernels") == 1
        assert registry.gauge("repro_schedule_cache_size").value(cache="compiled-kernels") == 1
        # a reset between publishes clamps deltas at zero (counters stay put)
        clear_caches()
        publish_cache_metrics(registry)
        assert hits.value(cache="compiled-kernels") == 2

    def test_standalone_cachestats_registry(self):
        stats = CacheStats("test-standalone", size_fn=lambda: 7)
        stats.record_miss(0.25)
        stats.record_hit()
        stats.record_hit()
        snap = all_cache_stats()["test-standalone"]
        assert snap["hits"] == 2 and snap["misses"] == 1 and snap["size"] == 7
        assert snap["hit_rate"] == pytest.approx(2 / 3)
        assert snap["build_seconds"] == pytest.approx(0.25)


class TestProfileCell:
    def test_sweep_covers_both_plans_and_batches(self):
        doc = profile_cell("path-n3-r3", batches=(1, 8), runs=2, seed=0)
        assert doc["cell"] == "path-n3-r3-lattice"
        assert [p["plan"] for p in doc["plans"]] == ["packed", "per-round"]
        for plan in doc["plans"]:
            assert [b["batch"] for b in plan["batches"]] == [1, 8]
            assert plan["layers"] == len(plan["batches"][0]["per_layer"])
            assert 0 < plan["mean_occupancy"] <= plan["max_occupancy"]
            for point in plan["batches"]:
                assert point["keys_per_s"] > 0
                assert point["wall_s"]["min"] <= point["wall_s"]["p50"]

    def test_full_benchreg_key_and_unknown_cell(self):
        assert resolve_profile_cell("path-n3-r3-lattice").key == "path-n3-r3-lattice"
        assert resolve_profile_cell("k2-n2-r4-machine").backend == "machine"
        with pytest.raises(ValueError, match="unknown profile cell"):
            profile_cell("torus-n9-r9")

    def test_render_profile_has_tables_and_heatmap(self):
        doc = profile_cell("path-n3-r3", batches=(4,), runs=2, seed=0)
        text = render_profile(doc)
        assert "packed plan" in text and "per-round plan" in text
        assert "occupancy by layer" in text and "L0" in text
        assert "keys/s" in text

    def test_chrome_trace_export(self):
        events = json.loads(profile_chrome_trace("path-n3-r3", batch=4))["traceEvents"]
        assert any(e.get("name") == "kernel-layer" for e in events)

    def test_cli_profile_json(self, capsys):
        assert main(["profile", "--cell", "path-n3-r3", "--batch", "8", "--runs",
                     "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {p["plan"] for p in doc["plans"]} == {"packed", "per-round"}
        point = doc["plans"][0]["batches"][0]
        assert point["per_layer"] and point["keys_per_s"] > 0

    def test_cli_profile_unknown_cell_exits_2(self, capsys):
        assert main(["profile", "--cell", "moebius-n9-r9", "--json"]) == 2
        assert "unknown profile cell" in capsys.readouterr().err


class TestMetricsEndpoint:
    def test_metrics_healthz_snapshot_and_404(self, schedule_caches):
        server = build_metrics_server(cell="path-n3-r3", batch=8, runs=2)
        with server:
            with urllib.request.urlopen(server.url("/metrics"), timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
                text = resp.read().decode()
            # valid exposition shape: TYPE lines and samples for our metrics
            assert "# TYPE repro_compiled_run_seconds histogram" in text
            assert "repro_compiled_run_seconds_bucket" in text
            assert 'le="+Inf"' in text
            assert "repro_compiled_keys_total" in text
            assert "repro_schedule_cache_hits_total" in text
            assert "repro_schedule_cache_misses_total" in text
            with urllib.request.urlopen(server.url("/healthz"), timeout=10) as resp:
                assert resp.read() == b"ok\n"
            with urllib.request.urlopen(server.url("/snapshot.json"), timeout=10) as resp:
                snap = json.loads(resp.read())
            assert "repro_compiled_run_seconds" in snap["metrics"]
            assert "compiled-kernels" in snap["caches"]
            assert snap["last_profile"]["batch"] == 8
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url("/nope"), timeout=10)
            assert err.value.code == 404

    def test_exposition_parses_line_by_line(self, schedule_caches):
        server = build_metrics_server(cell="path-n3-r3", batch=4, runs=1)
        with server:
            text = urllib.request.urlopen(server.url("/metrics"), timeout=10).read().decode()
        for line in text.splitlines():
            assert line, "no blank lines in exposition"
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                name_part, value = line.rsplit(" ", 1)
                float(value)  # every sample value is a number
                assert name_part[0].isalpha()

    def test_scrape_refreshes_cache_counters(self, schedule_caches):
        server = build_metrics_server(cell="path-n3-r3", batch=4, runs=1)
        with server:
            first = urllib.request.urlopen(server.url("/metrics"), timeout=10).read().decode()
            _kernel("k2-n2-r4")  # new compile between scrapes
            second = urllib.request.urlopen(server.url("/metrics"), timeout=10).read().decode()

        def misses(text: str) -> float:
            for line in text.splitlines():
                if line.startswith("repro_schedule_cache_misses_total") and "compiled" in line:
                    return float(line.rsplit(" ", 1)[1])
            raise AssertionError("cache miss sample not exposed")

        assert misses(second) == misses(first) + 1

    def test_ephemeral_port_and_plain_server(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "test").inc(3)
        with MetricsServer(registry) as server:
            assert server.port > 0
            text = urllib.request.urlopen(server.url("/metrics"), timeout=10).read().decode()
        assert "x_total 3" in text


class TestHttpRoutesAndShutdown:
    """Satellite: proper 404/405, extra handlers, graceful shutdown."""

    def test_404_names_the_known_endpoints(self):
        registry = MetricsRegistry()
        with MetricsServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url("/definitely-not-here"), timeout=10)
            assert err.value.code == 404
            assert err.value.headers["Content-Type"].startswith("text/plain")
            body = err.value.read().decode()
            for path in ("/metrics", "/healthz", "/snapshot.json"):
                assert path in body

    def test_wrong_method_is_405_with_allow_header(self):
        registry = MetricsRegistry()
        with MetricsServer(registry) as server:
            request = urllib.request.Request(
                server.url("/metrics"), data=b"{}", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 405
            assert err.value.headers["Allow"] == "GET"

    def test_custom_handlers_mount_and_appear_in_404(self):
        registry = MetricsRegistry()

        def echo(payload: bytes):
            return 200, "application/json", json.dumps({"len": len(payload)}).encode()

        with MetricsServer(registry, handlers={("POST", "/echo"): echo}) as server:
            request = urllib.request.Request(server.url("/echo"), data=b"12345", method="POST")
            with urllib.request.urlopen(request, timeout=10) as resp:
                assert json.loads(resp.read()) == {"len": 5}
            # GET on a POST-only route: 405 advertising POST
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url("/echo"), timeout=10)
            assert err.value.code == 405
            assert err.value.headers["Allow"] == "POST"
            # the 404 body advertises the mounted route
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url("/nope"), timeout=10)
            assert "/echo" in err.value.read().decode()

    def test_handler_exception_is_a_500_not_a_dead_thread(self):
        registry = MetricsRegistry()

        def broken(payload: bytes):
            raise RuntimeError("handler bug")

        with MetricsServer(registry, handlers={("GET", "/broken"): broken}) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url("/broken"), timeout=10)
            assert err.value.code == 500
            # the serving thread survived: /healthz still answers
            with urllib.request.urlopen(server.url("/healthz"), timeout=10) as resp:
                assert resp.read() == b"ok\n"

    def test_run_blocking_exits_on_request_shutdown(self):
        """The graceful-shutdown path: serve, request shutdown from another
        thread, and come back with the socket closed and thread joined."""
        import socket
        import threading

        registry = MetricsRegistry()
        registry.counter("x_total", "test").inc(1)
        server = MetricsServer(registry)
        port = server.port
        scraped: list[str] = []

        def shut_down_after_scrape():
            scraped.append(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=10
                ).read().decode()
            )
            server.request_shutdown()

        trigger = threading.Timer(0.05, shut_down_after_scrape)
        trigger.start()
        try:
            # off-main-thread signal installation is skipped automatically,
            # so this is safe to exercise directly in-process
            server.run_blocking(install_signal_handlers=False)
        finally:
            trigger.cancel()
        assert scraped and "x_total 1" in scraped[0]
        # listening socket is really closed: a fresh connect is refused
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=1.0).close()
