"""Tests for the critical-path model-conformance analyzer.

The acceptance bar: for every workload the analyzer's per-run totals must
equal the paper's closed forms — Theorem 1's ``S_r = (r-1)^2 S_2 +
(r-1)(r-2) R`` for the whole run and Lemma 3's ``M_k = 2(k-2)(S_2+R) +
S_2`` for every merge level — asserted here for r in {2, 3, 4} on both
backends, plus deviation detection on deliberately tampered span trees.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import (
    merge_routing_calls,
    merge_s2_calls,
    sort_routing_calls,
    sort_rounds,
    sort_s2_calls,
)
from repro.core.lattice_sort import ProductNetworkSorter
from repro.core.machine_sort import MachineSorter
from repro.graphs import k2, path_graph
from repro.observability import Tracer, conformance_report


def _traced_lattice(factor, r, rng):
    sorter = ProductNetworkSorter.for_factor(factor, r)
    tracer = Tracer()
    keys = rng.integers(0, 2**28, size=sorter.network.num_nodes)
    sorter.sort_sequence(keys, tracer=tracer)
    return tracer, sorter.sorter2d.rounds(factor.n), sorter.routing.rounds(factor.n)


def _traced_machine(factor, r, rng):
    sorter = MachineSorter.for_factor(factor, r)
    tracer = Tracer()
    keys = rng.integers(0, 2**28, size=sorter.network.num_nodes)
    sorter.sort(keys, tracer=tracer)
    return tracer


class TestClosedFormsLattice:
    """Lattice backend charges the analytic model exactly — the analyzer
    must reproduce Theorem 1 / Lemma 3 to the round, for r in {2, 3, 4}."""

    @pytest.mark.parametrize("r", [2, 3, 4])
    def test_theorem1_exact(self, r, rng):
        tracer, s2, routing = _traced_lattice(path_graph(3), r, rng)
        report = conformance_report(tracer, s2, routing)
        assert report.ok, report.deviations
        assert report.backend == "lattice" and report.r == r
        assert report.s2_spans == sort_s2_calls(r) == (r - 1) ** 2
        assert report.routing_spans == sort_routing_calls(r) == (r - 1) * (r - 2)
        assert report.vacuous_routing_spans == 0
        # the headline: measured total == (r-1)^2 S2 + (r-1)(r-2) R
        assert report.measured_total_rounds == sort_rounds(r, s2, routing)
        assert report.model_total_rounds == sort_rounds(r, s2, routing)
        assert report.theorem1_calls_ok and report.theorem1_rounds_ok
        assert report.matches_model is True
        # uniform unit costs, equal to the model's
        assert report.s2_unit_rounds == (s2,)
        if r > 2:
            assert report.routing_unit_rounds == (routing,)

    @pytest.mark.parametrize("r", [3, 4])
    def test_lemma3_every_merge_level(self, r, rng):
        tracer, s2, routing = _traced_lattice(path_graph(3), r, rng)
        report = conformance_report(tracer, s2, routing)
        # every dimension 3..r merges somewhere in the recursion (nested
        # merges of lower dimensions recur, e.g. dim 3 under both the
        # initial recursive sort and the dim-4 merge's columns)
        assert {m.dim for m in report.merge_levels} == set(range(3, r + 1))
        assert sum(1 for m in report.merge_levels if m.dim == r) == 1
        for level in report.merge_levels:
            k = level.dim
            assert level.s2_spans == merge_s2_calls(k) == 2 * (k - 2) + 1
            assert level.routing_spans == merge_routing_calls(k) == 2 * (k - 2)
            # Lemma 3: M_k = 2(k-2)(S2+R) + S2
            assert level.measured_rounds == 2 * (k - 2) * (s2 + routing) + s2
            assert level.ok


class TestClosedFormsMachine:
    """Machine backend: measured unit costs, vacuous transpositions charge
    zero — the closed form must still hold at the observed units."""

    @pytest.mark.parametrize("r", [2, 3, 4])
    def test_theorem1_at_measured_units(self, r, rng):
        tracer = _traced_machine(k2(), r, rng)
        report = conformance_report(tracer)
        assert report.ok, report.deviations
        assert report.backend == "machine"
        assert report.s2_spans == sort_s2_calls(r)
        assert report.routing_spans == sort_routing_calls(r)
        # hypercube: parity-1 transposition of a 2-block merge is vacuous
        assert report.vacuous_routing_spans == max(r - 2, 0)
        assert len(report.s2_unit_rounds) == 1
        s2_unit = report.s2_unit_rounds[0]
        routing_unit = report.routing_unit_rounds[0] if report.routing_unit_rounds else 0
        live = report.routing_spans - report.vacuous_routing_spans
        assert report.measured_total_rounds == (
            sort_s2_calls(r) * s2_unit + live * routing_unit
        )
        assert report.theorem1_rounds_ok
        # no model supplied: model cross-check stays open
        assert report.model_total_rounds is None and report.matches_model is None

    @pytest.mark.parametrize("r", [3, 4])
    def test_lemma3_call_structure(self, r, rng):
        tracer = _traced_machine(k2(), r, rng)
        report = conformance_report(tracer)
        assert {m.dim for m in report.merge_levels} == set(range(3, r + 1))
        for level in report.merge_levels:
            assert level.calls_ok and level.rounds_ok

    def test_non_hypercube_machine_conforms(self, rng):
        tracer = _traced_machine(path_graph(3), 3, rng)
        report = conformance_report(tracer)
        assert report.ok, report.deviations
        assert report.vacuous_routing_spans == 0  # 3 blocks: nothing vacuous


class TestPhaseBreakdown:
    def test_phases_partition_the_rounds(self, rng):
        tracer, s2, routing = _traced_lattice(path_graph(3), 3, rng)
        report = conformance_report(tracer, s2, routing)
        assert sum(p.rounds for p in report.phases) == report.measured_total_rounds
        assert sum(p.count for p in report.phases) == sum(1 for _ in tracer.iter_spans())
        by_name = {p.name: p for p in report.phases}
        assert by_name["transposition"].kind == "routing"
        assert by_name["transposition"].count == sort_routing_calls(3)

    def test_as_dict_round_trips_json_safe(self, rng):
        import json

        tracer, s2, routing = _traced_lattice(path_graph(3), 3, rng)
        doc = json.loads(json.dumps(conformance_report(tracer, s2, routing).as_dict()))
        assert doc["ok"] is True
        assert doc["s2_spans"] == 4
        assert doc["merge_levels"][0]["dim"] == 3
        assert doc["phases"]


class TestDeviationDetection:
    """Tampered span trees must be flagged, not silently accepted."""

    def _root(self, tracer, r=3, backend="machine"):
        return tracer.span("sort", backend=backend, factor="k2", n=2, r=r)

    def test_missing_s2_span_flags_theorem1(self):
        tracer = Tracer()
        with self._root(tracer):  # r=3 needs 4 s2 + 2 routing spans
            for _ in range(3):
                with tracer.span("block-sorts", kind="s2", rounds=3):
                    pass
            for _ in range(2):
                with tracer.span("transposition", kind="routing", rounds=1, pairs=4):
                    pass
        report = conformance_report(tracer)
        assert not report.theorem1_calls_ok
        assert any("Theorem 1 violated" in d for d in report.deviations)

    def test_non_uniform_s2_costs_flagged(self):
        tracer = Tracer()
        with self._root(tracer, r=2):
            with tracer.span("a", kind="s2", rounds=3):
                pass
            with tracer.span("b", kind="s2", rounds=5):
                pass
        report = conformance_report(tracer)
        assert any("not uniform" in d for d in report.deviations)

    def test_closed_form_mismatch_flagged(self):
        tracer = Tracer()
        with self._root(tracer, r=2) as root:
            with tracer.span("a", kind="s2", rounds=3):
                pass
            root.set(rounds=7)  # extra rounds charged outside any s2/routing span
        report = conformance_report(tracer)
        assert report.measured_total_rounds == 10
        assert not report.theorem1_rounds_ok
        assert any("closed form violated" in d for d in report.deviations)

    def test_lattice_unit_cost_disagreeing_with_model_flagged(self):
        tracer = Tracer()
        with self._root(tracer, r=2, backend="lattice"):
            with tracer.span("a", kind="s2", rounds=3):
                pass
        report = conformance_report(tracer, s2_model_rounds=4, routing_model_rounds=1)
        assert any("lattice backend charged S2" in d for d in report.deviations)
        assert report.matches_model is False

    def test_lemma3_violation_flagged(self):
        tracer = Tracer()
        with self._root(tracer, r=3):
            for _ in range(4):
                with tracer.span("s", kind="s2", rounds=3):
                    pass
            for _ in range(2):
                with tracer.span("t", kind="routing", rounds=1, pairs=4):
                    pass
            with tracer.span("merge", dim=3):  # empty merge subtree: 0 of each
                pass
        report = conformance_report(tracer)
        assert any("Lemma 3 violated at dim 3" in d for d in report.deviations)

    def test_unusable_r_reported(self):
        tracer = Tracer()
        with tracer.span("sort", backend="machine"):
            pass
        report = conformance_report(tracer)
        assert not report.ok
        assert any("no usable r" in d for d in report.deviations)

    def test_requires_exactly_one_sort_root(self, rng):
        with pytest.raises(ValueError, match="exactly one 'sort' root"):
            conformance_report(Tracer())
        tracer = Tracer()
        for _ in range(2):
            with tracer.span("sort", r=2):
                pass
        with pytest.raises(ValueError, match="exactly one 'sort' root"):
            conformance_report(tracer)
