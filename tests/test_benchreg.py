"""Tests for the benchmark-regression harness and its CLI.

Covers the workload matrix snapshot (schema, per-cell metrics and phase
breakdowns, conformance verdicts), persistence and baseline discovery,
threshold-gated comparison semantics, the ``repro bench`` CLI surface, and
the committed ``BENCH_seed.json`` baseline staying reproducible.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.cli import main
from repro.observability.benchreg import (
    DEFAULT_MATRIX,
    DEFAULT_THRESHOLDS,
    SCHEMA_VERSION,
    SERVING_STRUCTURAL_COUNTS,
    MetricDelta,
    WorkloadCell,
    bench_path,
    compare_documents,
    find_baseline,
    load_document,
    run_cell,
    run_matrix,
    write_document,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def matrix_doc():
    """One full run of the canonical matrix, shared across this module."""
    return run_matrix(DEFAULT_MATRIX, seed=0, label="test")


class TestWorkloadMatrix:
    def test_default_matrix_is_wide_enough(self):
        # acceptance: at least 6 cells, both backends, r covering 2..4
        assert len(DEFAULT_MATRIX) >= 6
        assert {c.backend for c in DEFAULT_MATRIX} == {"lattice", "machine"}
        assert {c.r for c in DEFAULT_MATRIX} >= {2, 3, 4}
        keys = [c.key for c in DEFAULT_MATRIX]
        assert len(keys) == len(set(keys))

    def test_cell_key_is_stable(self):
        assert WorkloadCell("path", 3, 2, "lattice").key == "path-n3-r2-lattice"

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown factor family"):
            WorkloadCell("moebius", 3, 2, "lattice").build_factor()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_cell(WorkloadCell("path", 3, 2, "quantum"))

    def test_schema_version_pinned(self):
        # v7: every cell carries an ``optimize`` block — the certified
        # optimizer's hashes, per-pass certificates and translation-validation
        # verdict; remaining op counts gate at zero tolerance and a fallback
        # on a canonical cell is a hard error.
        # Bump this pin deliberately alongside BENCH_seed.json regeneration.
        assert SCHEMA_VERSION == 7

    def test_document_schema(self, matrix_doc):
        assert matrix_doc["schema_version"] == SCHEMA_VERSION
        assert matrix_doc["label"] == "test"
        assert matrix_doc["seed"] == 0
        assert len(matrix_doc["cells"]) == len(DEFAULT_MATRIX)
        json.dumps(matrix_doc)  # JSON-safe as-is

    def test_every_cell_sorted_and_conformant(self, matrix_doc):
        for cell in matrix_doc["cells"]:
            assert cell["sorted_ok"], cell["cell"]
            conf = cell["conformance"]
            assert conf["ok"], (cell["cell"], conf["deviations"])
            assert conf["theorem1_calls_ok"] and conf["theorem1_rounds_ok"]
            # closed form at measured units always equals the measurement
            assert conf["predicted_total_rounds"] == cell["metrics"]["total_rounds"]

    def test_lattice_cells_match_the_analytic_model(self, matrix_doc):
        lattice = [c for c in matrix_doc["cells"] if c["backend"] == "lattice"]
        assert lattice
        for cell in lattice:
            assert cell["conformance"]["matches_model"] is True
            assert cell["conformance"]["model_total_rounds"] == cell["metrics"]["total_rounds"]

    def test_per_cell_metrics_and_phase_breakdown(self, matrix_doc):
        for cell in matrix_doc["cells"]:
            m = cell["metrics"]
            r = cell["r"]
            assert m["s2_calls"] == (r - 1) ** 2
            assert m["routing_calls"] == (r - 1) * (r - 2)
            assert m["total_rounds"] == m["s2_rounds"] + m["routing_rounds"]
            assert m["span_count"] > 0 and m["wall_time_s"] >= 0
            # phases partition the charged rounds and span population
            assert sum(p["rounds"] for p in cell["phases"]) == m["total_rounds"]
            assert sum(p["count"] for p in cell["phases"]) == m["span_count"]

    def test_machine_cells_carry_traffic_and_comparisons(self, matrix_doc):
        machine = [c for c in matrix_doc["cells"] if c["backend"] == "machine"]
        assert machine
        for cell in machine:
            assert cell["metrics"]["comparisons"] > 0
            traffic = cell["traffic"]
            assert traffic["operations"] > 0 and traffic["pair_count"] > 0
            assert 0 < traffic["peak_node_utilisation"] <= 1.0
        lattice = [c for c in matrix_doc["cells"] if c["backend"] == "lattice"]
        assert all("traffic" not in c for c in lattice)

    def test_machine_cells_carry_topology(self, matrix_doc):
        machine = [c for c in matrix_doc["cells"] if c["backend"] == "machine"]
        assert machine
        for cell in machine:
            topo = cell["topology"]
            # the observatory's edge accounting must agree with the
            # recorder's ground-truth traversal counter exactly
            assert topo["total_traversals"] == cell["traffic"]["link_traversals"]
            assert topo["directed_edges"] >= topo["used_edges"] > 0
            assert topo["peak_buffer_depth"] == cell["traffic"]["peak_buffer_depth"]
            assert topo["per_phase"]  # phase-attributed histograms present
        lattice = [c for c in matrix_doc["cells"] if c["backend"] == "lattice"]
        assert all("topology" not in c for c in lattice)

    def test_structural_metrics_are_deterministic(self):
        a = run_cell(WorkloadCell("path", 3, 2, "lattice"), seed=0)
        b = run_cell(WorkloadCell("path", 3, 2, "lattice"), seed=1)
        for metric in ("total_rounds", "s2_rounds", "s2_calls", "span_count"):
            assert a["metrics"][metric] == b["metrics"][metric]
        # the schedule hash is a pure function of the geometry, never the keys
        assert a["schedule_hash"] == b["schedule_hash"]

    def test_every_cell_pins_its_schedule_hash(self, matrix_doc):
        for cell in matrix_doc["cells"]:
            assert len(cell["schedule_hash"]) == 64, cell["cell"]

    def test_compiled_block_measures_the_batch_kernel(self):
        record = run_cell(WorkloadCell("path", 3, 3, "lattice"), seed=0,
                          compiled_batch=32)
        compiled = record["compiled"]
        assert compiled["batch"] == 32
        assert compiled["matches"] is True
        assert compiled["schedule_hash"] == record["schedule_hash"]
        # packing can only merge rounds, never split them
        assert 0 < compiled["layers"] <= compiled["rounds"]
        assert compiled["speedup"] > 0
        # machine cells never grow a compiled block
        machine = run_cell(WorkloadCell("k2", 2, 2, "machine"), seed=0,
                           compiled_batch=32)
        assert "compiled" not in machine
        # v4: the same run also profiles the kernel
        profile = record["profile"]
        assert profile["batch"] == 32 and profile["runs"] >= 1
        assert profile["layers"] == compiled["layers"]
        assert 0 < profile["p50_run_s"] <= profile["p99_run_s"]
        assert profile["keys_per_s"] > 0
        assert 0 < profile["mean_occupancy"] <= profile["max_occupancy"]
        assert "profile" not in machine


class TestPersistence:
    def test_write_load_round_trip(self, matrix_doc, tmp_path):
        path = write_document(matrix_doc, str(tmp_path / "BENCH_x.json"))
        assert load_document(path) == json.loads(json.dumps(matrix_doc))

    def test_bench_path_sanitises_label(self, tmp_path):
        assert bench_path("pr 7/fix", str(tmp_path)) == str(tmp_path / "BENCH_pr-7-fix.json")

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "BENCH_bogus.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="schema_version"):
            load_document(str(path))

    def test_find_baseline_latest_by_created(self, matrix_doc, tmp_path):
        old = dict(matrix_doc, created=100.0, label="old")
        new = dict(matrix_doc, created=200.0, label="new")
        write_document(old, str(tmp_path / "BENCH_old.json"))
        newest = write_document(new, str(tmp_path / "BENCH_new.json"))
        (tmp_path / "BENCH_junk.json").write_text("not json")
        assert find_baseline(str(tmp_path)) == newest
        assert find_baseline(str(tmp_path), exclude=newest) == str(tmp_path / "BENCH_old.json")
        assert find_baseline(str(tmp_path / "empty")) is None


class TestComparison:
    def test_identical_documents_are_ok(self, matrix_doc):
        result = compare_documents(matrix_doc, copy.deepcopy(matrix_doc))
        assert result.ok and not result.regressions and not result.errors
        assert "all compared metrics unchanged" in result.render()

    def test_structural_regression_detected(self, matrix_doc):
        worse = copy.deepcopy(matrix_doc)
        worse["cells"][0]["metrics"]["total_rounds"] += 1
        result = compare_documents(matrix_doc, worse)
        assert not result.ok
        assert [d.metric for d in result.regressions] == ["total_rounds"]
        assert "REGRESSED" in result.render()

    def test_improvement_is_not_a_regression(self, matrix_doc):
        better = copy.deepcopy(matrix_doc)
        better["cells"][0]["metrics"]["total_rounds"] -= 1
        result = compare_documents(matrix_doc, better)
        assert result.ok
        assert "improved" in result.render()

    def test_wall_time_informational_unless_opted_in(self, matrix_doc):
        slow = copy.deepcopy(matrix_doc)
        for cell in slow["cells"]:
            cell["metrics"]["wall_time_s"] *= 100
        assert compare_documents(matrix_doc, slow).ok
        gated = compare_documents(matrix_doc, slow, thresholds={"wall_time_s": 1.0})
        assert not gated.ok
        assert all(d.metric == "wall_time_s" for d in gated.regressions)

    def test_missing_cell_is_an_error(self, matrix_doc):
        partial = copy.deepcopy(matrix_doc)
        dropped = partial["cells"].pop()
        result = compare_documents(matrix_doc, partial)
        assert not result.ok
        assert any(dropped["cell"] in e and "missing" in e for e in result.errors)

    def test_new_cell_is_informational(self, matrix_doc):
        grown = copy.deepcopy(matrix_doc)
        extra = copy.deepcopy(grown["cells"][0])
        extra["cell"] = "newfam-n9-r2-lattice"
        grown["cells"].append(extra)
        result = compare_documents(matrix_doc, grown)
        assert result.ok and result.new_cells == ["newfam-n9-r2-lattice"]

    def test_unsorted_candidate_is_an_error(self, matrix_doc):
        broken = copy.deepcopy(matrix_doc)
        broken["cells"][0]["sorted_ok"] = False
        result = compare_documents(matrix_doc, broken)
        assert any("UNSORTED" in e for e in result.errors)

    def test_nonconformant_candidate_is_an_error(self, matrix_doc):
        broken = copy.deepcopy(matrix_doc)
        broken["cells"][0]["conformance"]["ok"] = False
        broken["cells"][0]["conformance"]["deviations"] = ["Theorem 1 violated: test"]
        result = compare_documents(matrix_doc, broken)
        assert any("Theorem 1 violated" in e for e in result.errors)

    def test_schema_mismatch_is_an_error(self, matrix_doc):
        future = dict(copy.deepcopy(matrix_doc), schema_version=SCHEMA_VERSION + 1)
        result = compare_documents(matrix_doc, future)
        assert not result.ok
        assert any("schema mismatch" in e for e in result.errors)
        assert not result.deltas  # no point diffing incomparable layouts

    def test_zero_baseline_regresses_on_any_growth(self):
        delta = MetricDelta("c", "m", baseline=0, candidate=1, threshold=0.0)
        assert delta.regressed
        assert not MetricDelta("c", "m", 0, 0, 0.0).regressed
        assert not MetricDelta("c", "m", 5, 50, None).regressed  # unthresholded

    def test_default_thresholds_gate_structure_not_wall_time(self):
        assert DEFAULT_THRESHOLDS["total_rounds"] == 0.0
        assert DEFAULT_THRESHOLDS["wall_time_s"] is None

    def test_improved_direction_flips_for_throughput_metrics(self):
        # wall time: lower is better
        assert MetricDelta("c", "wall_time_s", 2.0, 1.0, None).improved
        assert not MetricDelta("c", "wall_time_s", 1.0, 2.0, None).improved
        # throughput/speedup: higher is better
        assert MetricDelta("c", "profile.keys_per_s", 1e6, 2e6, None).improved
        assert not MetricDelta("c", "profile.keys_per_s", 2e6, 1e6, None).improved
        assert MetricDelta("c", "compiled.speedup", 40.0, 80.0, None).improved

    def test_schedule_hash_drift_is_an_error(self, matrix_doc):
        drifted = copy.deepcopy(matrix_doc)
        drifted["cells"][0]["schedule_hash"] = "f" * 64
        result = compare_documents(matrix_doc, drifted)
        assert not result.ok
        assert any("schedule hash drift" in e for e in result.errors)

    def test_compiled_mismatch_is_an_error(self, matrix_doc):
        broken = copy.deepcopy(matrix_doc)
        lattice = next(c for c in broken["cells"] if c["backend"] == "lattice")
        lattice["compiled"] = {"batch": 8, "matches": False, "speedup": 1.0}
        result = compare_documents(matrix_doc, broken)
        assert not result.ok
        assert any("compiled kernel" in e for e in result.errors)

    def test_compiled_speedup_is_informational(self):
        assert DEFAULT_THRESHOLDS["compiled.speedup"] is None
        assert DEFAULT_THRESHOLDS["compiled.layers"] == 0.0

    def test_topology_totals_are_zero_tolerance(self, matrix_doc):
        assert DEFAULT_THRESHOLDS["topology.total_traversals"] == 0.0
        assert DEFAULT_THRESHOLDS["topology.directed_edges"] == 0.0
        assert DEFAULT_THRESHOLDS["topology.mean_load"] is None
        inflated = copy.deepcopy(matrix_doc)
        victim = next(c for c in inflated["cells"] if c["backend"] == "machine")
        victim["topology"]["total_traversals"] += 1
        result = compare_documents(matrix_doc, inflated)
        assert not result.ok
        assert any(
            d.metric == "topology.total_traversals" for d in result.regressions
        )


class TestBenchCli:
    def test_bench_run_writes_snapshot(self, tmp_path, capsys):
        out = tmp_path / "BENCH_t.json"
        assert main(["bench", "run", "--label", "t", "--out", str(out)]) == 0
        doc = load_document(str(out))
        assert doc["label"] == "t" and len(doc["cells"]) == len(DEFAULT_MATRIX)
        stdout = capsys.readouterr().out
        assert "schema v7" in stdout and "conformance=ok" in stdout

    def test_bench_compare_same_file_ok(self, tmp_path, capsys, matrix_doc):
        path = write_document(matrix_doc, str(tmp_path / "BENCH_t.json"))
        assert main(["bench", "compare", "--baseline", path, "--candidate", path]) == 0
        assert "verdict: OK" in capsys.readouterr().out

    def test_bench_compare_exits_nonzero_on_regression(self, tmp_path, capsys, matrix_doc):
        base = write_document(matrix_doc, str(tmp_path / "BENCH_base.json"))
        worse = copy.deepcopy(matrix_doc)
        worse["cells"][0]["metrics"]["comparisons"] += 10
        cand = write_document(worse, str(tmp_path / "BENCH_cand.json"))
        assert main(["bench", "compare", "--baseline", base, "--candidate", cand]) == 1
        assert "verdict: REGRESSION" in capsys.readouterr().out

    def test_bench_compare_json_output(self, tmp_path, capsys, matrix_doc):
        path = write_document(matrix_doc, str(tmp_path / "BENCH_t.json"))
        assert main(
            ["bench", "compare", "--baseline", path, "--candidate", path, "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True and doc["regressions"] == []
        assert {d["metric"] for d in doc["deltas"]} >= {"total_rounds", "comparisons"}

    def test_bench_compare_without_baseline_exits_2(self, tmp_path, capsys, matrix_doc, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cand = write_document(matrix_doc, str(tmp_path / "BENCH_only.json"))
        assert main(["bench", "compare", "--candidate", cand]) == 2
        assert "no baseline" in capsys.readouterr().err

    def test_bench_metrics_prometheus(self, capsys):
        assert main(["bench", "metrics", "--factor", "k2", "--r", "3"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_spans_total counter" in out
        assert "repro_machine_steps_total" in out

    def test_bench_metrics_json(self, capsys):
        assert main(["bench", "metrics", "--factor", "path", "--n", "3", "--r", "2",
                     "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["repro_spans_total"]["type"] == "counter"


class TestCommittedBaseline:
    """The blessed BENCH_seed.json must stay loadable and reproducible."""

    def test_seed_baseline_is_valid(self):
        path = os.path.join(REPO_ROOT, "BENCH_seed.json")
        doc = load_document(path)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["label"] == "seed"
        assert len(doc["cells"]) >= 6

    def test_fresh_run_does_not_regress_the_seed(self, matrix_doc):
        baseline = load_document(os.path.join(REPO_ROOT, "BENCH_seed.json"))
        result = compare_documents(baseline, matrix_doc)
        assert result.ok, result.render()

    def test_seed_pins_schedule_hashes_and_compiled_speedup(self, matrix_doc):
        """The blessed seed pins every cell's emitted-schedule hash (fresh
        emissions must reproduce it byte for byte) and records a >=5x
        compiled-batch speedup on at least one lattice cell."""
        doc = load_document(os.path.join(REPO_ROOT, "BENCH_seed.json"))
        fresh = {c["cell"]: c["schedule_hash"] for c in matrix_doc["cells"]}
        for cell in doc["cells"]:
            assert cell["schedule_hash"] == fresh[cell["cell"]], cell["cell"]
        compiled = [c["compiled"] for c in doc["cells"] if "compiled" in c]
        assert compiled, "seed must carry compiled-kernel measurements"
        assert all(c["matches"] for c in compiled)
        assert max(c["speedup"] for c in compiled) >= 5.0


# ----------------------------------------------------------------------
# schema v5+: the serving section
# ----------------------------------------------------------------------

def _serving_scenario(key="path-n3-r3/uniform/poisson", **counts_override):
    """A fabricated scenario result with healthy defaults."""
    counts = {"offered": 10, "completed": 10, "rejected": 0, "mismatches": 0, "errors": 0}
    counts.update(counts_override)
    cell, mix, arrivals = key.split("/")
    return {
        "scenario": {
            "key": key, "cell": cell, "mix": mix, "arrivals": arrivals,
            "rate": 100.0, "requests": 10, "seed": 0,
            "burst_factor": 8.0, "burst_len": 16,
        },
        "counts": counts,
        "latency_ms": {"p50": 1.0, "p90": 1.5, "p99": 2.0, "max": 2.5, "mean": 1.1},
        "duration_s": 0.1,
        "offered_rps": 100.0,
        "completed_rps": 100.0,
        "service": {},
        "config": None,
    }


def _doc_with_serving(scenarios, label="serving-test"):
    """A minimal comparable document carrying only a serving section."""
    return {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "created": 0.0,
        "seed": 0,
        "cells": [],
        "serving": {"config": {}, "scenarios": scenarios},
    }


class TestServingComparison:
    def test_structural_counts_are_exported(self):
        assert SERVING_STRUCTURAL_COUNTS == (
            "offered", "completed", "rejected", "mismatches", "errors"
        )

    def test_identical_serving_sections_compare_ok(self):
        doc = _doc_with_serving([_serving_scenario()])
        result = compare_documents(doc, copy.deepcopy(doc))
        assert result.ok, result.render()
        metrics = {d.metric for d in result.deltas}
        assert "serving.latency_ms.p50" in metrics
        assert "serving.completed_rps" in metrics

    def test_candidate_without_serving_is_a_note_not_an_error(self):
        baseline = _doc_with_serving([_serving_scenario()])
        candidate = copy.deepcopy(baseline)
        candidate.pop("serving")
        result = compare_documents(baseline, candidate)
        assert result.ok
        assert any("without --serving" in note for note in result.notes)
        assert "note:" in result.render()

    def test_structural_count_drift_is_an_error(self):
        baseline = _doc_with_serving([_serving_scenario()])
        candidate = _doc_with_serving([_serving_scenario(completed=9, errors=1)])
        result = compare_documents(baseline, candidate)
        assert not result.ok
        assert any("zero tolerance" in err for err in result.errors)

    def test_candidate_invariants_hold_without_any_baseline_serving(self):
        """Mismatches / errors / shed requests fail even on a fresh baseline."""
        baseline = _doc_with_serving([_serving_scenario()])
        baseline.pop("serving")
        candidate = _doc_with_serving([_serving_scenario(mismatches=2)])
        result = compare_documents(baseline, candidate)
        assert not result.ok
        assert any("ground truth" in err for err in result.errors)

        candidate = _doc_with_serving([_serving_scenario(rejected=3)])
        result = compare_documents(baseline, candidate)
        assert not result.ok
        assert any("shed" in err for err in result.errors)

    def test_page_severity_slo_alert_fails_the_candidate(self):
        """v6: the flight recorder's verdict is a candidate invariant —
        pages during the clean suite fail even without a baseline."""
        baseline = _doc_with_serving([_serving_scenario()])
        baseline.pop("serving")
        scenario = _serving_scenario()
        scenario["slo"] = {
            "page_alerts": 2, "max_severity_seen": "page",
            "current_severity": "ok", "alerts": [],
        }
        candidate = _doc_with_serving([scenario])
        result = compare_documents(baseline, candidate)
        assert not result.ok
        assert any("page-severity" in err for err in result.errors)
        # warning-only burn stays informational
        scenario["slo"] = {"page_alerts": 0, "max_severity_seen": "warning"}
        assert compare_documents(baseline, _doc_with_serving([scenario])).ok

    def test_server_latency_feeds_informational_scalars(self):
        scenario = _serving_scenario()
        scenario["server_latency_ms"] = {
            "request": {"p50": 1.0, "p99": 2.0},
            "queue_wait": {"p50": 0.1, "p99": 0.4},
            "consistent": True,
        }
        doc = _doc_with_serving([scenario])
        result = compare_documents(doc, doc)
        assert result.ok
        metrics = {d.metric for d in result.deltas}
        assert "serving.server_request_ms.p99" in metrics
        assert "serving.server_queue_wait_ms.p50" in metrics

    def test_missing_and_new_scenarios(self):
        s1 = _serving_scenario()
        s2 = _serving_scenario(key="k2-n2-r4/duplicates/poisson")
        result = compare_documents(
            _doc_with_serving([s1, s2]), _doc_with_serving([s1])
        )
        assert not result.ok
        assert any("missing from candidate" in err for err in result.errors)
        result = compare_documents(
            _doc_with_serving([s1]), _doc_with_serving([s1, s2])
        )
        assert result.ok
        assert "serving:k2-n2-r4/duplicates/poisson" in result.new_cells

    def test_latency_drift_stays_informational(self):
        baseline = _doc_with_serving([_serving_scenario()])
        candidate = copy.deepcopy(baseline)
        candidate["serving"]["scenarios"][0]["latency_ms"]["p99"] = 50.0
        candidate["serving"]["scenarios"][0]["completed_rps"] = 1.0
        result = compare_documents(baseline, candidate)
        assert result.ok, result.render()

    def test_run_matrix_serving_flag(self):
        """run_matrix(serving=True) lands a well-formed section (tiny matrix)."""
        doc = run_matrix((DEFAULT_MATRIX[0],), seed=0, label="t", serving=True)
        serving = doc["serving"]
        assert serving["config"]["max_batch"] == 32
        assert len(serving["scenarios"]) >= 3
        for scenario in serving["scenarios"]:
            counts = scenario["counts"]
            assert counts["completed"] == counts["offered"]
            assert counts["rejected"] == counts["mismatches"] == counts["errors"] == 0
        json.dumps(doc)  # JSON-safe as-is
        result = compare_documents(doc, copy.deepcopy(doc))
        assert result.ok, result.render()
