"""Tests for the regenerable report and its CLI command."""

from __future__ import annotations

import os

from repro.analysis.report import generate_report
from repro.cli import main


class TestGenerateReport:
    def test_contains_all_sections(self):
        text = generate_report(max_n_lemma1=2, max_r_hypercube=4)
        assert "# Reproduction report" in text
        assert "Lemma 1" in text
        assert "Theorem 1" in text
        assert "§5.1" in text
        assert "§5.3" in text
        assert "Telemetry" in text
        assert "Compiled kernels" in text

    def test_telemetry_section_exact(self):
        text = generate_report(max_n_lemma1=2, max_r_hypercube=3)
        assert "TELEMETRY MISMATCH" not in text
        assert "Span counts reproduce Theorem 1 structurally" in text

    def test_every_theorem1_row_exact(self):
        text = generate_report(max_n_lemma1=2, max_r_hypercube=3)
        assert "MISMATCH" not in text
        assert "Every row matches Theorem 1 exactly." in text

    def test_lemma1_tight(self):
        text = generate_report(max_n_lemma1=3, max_r_hypercube=3)
        assert "| 3 | 9 | 9 | tight |" in text

    def test_seed_changes_keys_not_conclusions(self):
        a = generate_report(seed=1, max_n_lemma1=2, max_r_hypercube=3)
        b = generate_report(seed=2, max_n_lemma1=2, max_r_hypercube=3)

        # round counts are input-independent (oblivious algorithm); only the
        # random factor-graph row and the wall-clock sections (kernel profile,
        # serving latency/batching) may differ between runs
        def keep(text: str) -> list[str]:
            lines, skip = [], False
            for ln in text.splitlines():
                if ln.startswith("## "):
                    skip = ln.startswith(("## Compiled kernels", "## Serving observatory"))
                if not skip and "random(" not in ln:
                    lines.append(ln)
            return lines

        assert keep(a) == keep(b)
        assert "MISMATCH" not in a and "MISMATCH" not in b


class TestCli:
    def test_report_to_stdout(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["report", "--out", str(path)]) == 0
        assert os.path.exists(path)
        assert "Theorem 1" in path.read_text()
