"""Tests for the fine-grained machine backend (cross-validation of §4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.complexity import sort_routing_calls, sort_s2_calls
from repro.core.lattice_sort import ProductNetworkSorter
from repro.core.machine_sort import MachineSorter
from repro.graphs import (
    complete_binary_tree,
    cycle_graph,
    k2,
    path_graph,
    random_connected_graph,
    star_graph,
)
from repro.orders import lattice_to_sequence
from repro.sorters2d import HypercubeThreeStepSorter, OddEvenSnakeSorter, ShearSorter


class TestCorrectness:
    @pytest.mark.parametrize(
        "factory,r",
        [
            (lambda: path_graph(3), 2),
            (lambda: path_graph(3), 3),
            (lambda: path_graph(4), 3),
            (lambda: path_graph(3), 4),
            (lambda: cycle_graph(4), 3),
            (lambda: k2(), 5),
            (lambda: star_graph(4), 3),
            (lambda: complete_binary_tree(1), 3),
            (lambda: complete_binary_tree(2), 2),
            (lambda: random_connected_graph(5, seed=13), 3),
        ],
        ids=["path3r2", "path3r3", "path4r3", "path3r4", "cycle4r3", "k2r5",
             "star4r3", "cbt1r3", "cbt2r2", "random5r3"],
    )
    def test_sorts(self, factory, r, rng):
        factor = factory()
        ms = MachineSorter.for_factor(factor, r)
        keys = rng.integers(0, 2**20, size=ms.network.num_nodes)
        machine, ledger = ms.sort(keys)
        assert np.array_equal(lattice_to_sequence(machine.lattice()), np.sort(keys))
        assert ledger.s2_calls == sort_s2_calls(r)
        assert ledger.routing_calls == sort_routing_calls(r)

    def test_rejects_r1(self):
        with pytest.raises(ValueError):
            MachineSorter.for_factor(path_graph(3), 1)

    def test_every_round_attributed(self, rng):
        ms = MachineSorter.for_factor(path_graph(3), 3)
        keys = rng.integers(0, 100, size=27)
        machine, ledger = ms.sort(keys)
        assert machine.rounds == ledger.total_rounds

    def test_generic_snake_sorter_backend(self, rng):
        ms = MachineSorter.for_factor(path_graph(3), 3, OddEvenSnakeSorter())
        keys = rng.integers(0, 100, size=27)
        machine, _ = ms.sort(keys)
        assert np.array_equal(lattice_to_sequence(machine.lattice()), np.sort(keys))

    def test_default_sorter_selection(self):
        assert isinstance(MachineSorter.for_factor(k2(), 3).sorter, HypercubeThreeStepSorter)
        assert isinstance(MachineSorter.for_factor(path_graph(3), 3).sorter, ShearSorter)


class TestCrossValidation:
    """The two backends are the same algorithm: identical final lattices."""

    @pytest.mark.parametrize(
        "factory,r",
        [
            (lambda: path_graph(3), 3),
            (lambda: cycle_graph(4), 3),
            (lambda: k2(), 4),
            (lambda: complete_binary_tree(1), 3),
        ],
        ids=["path3", "cycle4", "k2", "cbt1"],
    )
    def test_lattice_equals_machine(self, factory, r, rng):
        factor = factory()
        keys = rng.integers(0, 10**6, size=factor.n**r)
        lat_sorter = ProductNetworkSorter.for_factor(factor, r)
        lattice, _ = lat_sorter.sort_sequence(keys)
        machine, _ = MachineSorter.for_factor(factor, r).sort(keys)
        assert np.array_equal(lattice, machine.lattice())


class TestHypercubeRounds:
    """§5.3: the measured cost against the paper's 3(r-1)^2 + (r-1)(r-2).

    Our implementation is one round cheaper per merge level: with N = 2
    there are only two dimension-{1,2} blocks per merge, so the second
    odd-even block transposition has no pairs and costs zero.  Hence
    measured = paper_formula - (r - 2) for r >= 2.
    """

    @pytest.mark.parametrize("r", [2, 3, 4, 5, 6])
    def test_exact_rounds(self, r, rng):
        ms = MachineSorter.for_factor(k2(), r)
        keys = rng.integers(0, 2**20, size=2**r)
        _, ledger = ms.sort(keys)
        paper = 3 * (r - 1) ** 2 + (r - 1) * (r - 2)
        assert ledger.total_rounds == paper - max(0, r - 2)
        assert ledger.total_rounds <= paper


class TestLabellingEffect:
    """§2/§4 remark: Hamiltonian labelling affects constants only."""

    def test_tree_costs_more_than_path_but_sorts(self, rng):
        keys = rng.integers(0, 1000, size=27)
        # 3-node path vs the same 3 nodes labelled as a star-ish tree is
        # degenerate; use 7-node factors at r = 2 instead
        keys = rng.integers(0, 1000, size=49)
        path_rounds = MachineSorter.for_factor(path_graph(7), 2).sort(keys)[1].total_rounds
        tree_rounds = MachineSorter.for_factor(complete_binary_tree(2), 2).sort(keys)[1].total_rounds
        assert tree_rounds > path_rounds
        # constant-factor, not asymptotic: within the 2*dilation bound
        assert tree_rounds <= 6 * path_rounds
