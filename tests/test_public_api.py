"""Tests for the top-level public API surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro


class TestEagerExports:
    def test_version(self):
        assert repro.__version__

    def test_graph_factories(self):
        assert repro.path_graph(4).n == 4
        assert repro.petersen_graph().n == 10
        assert repro.ProductGraph(repro.k2(), 3).num_nodes == 8

    def test_order_functions(self):
        assert repro.gray_rank((1, 0), 3) == 5
        assert repro.gray_unrank(5, 3, 2) == (1, 0)
        lat = repro.sequence_to_lattice(np.arange(9), 3, 2)
        assert repro.is_snake_sorted(lat)
        assert np.array_equal(repro.lattice_to_sequence(lat), np.arange(9))


class TestLazyExports:
    def test_product_network_sorter(self):
        sorter = repro.ProductNetworkSorter.for_factor(repro.path_graph(3), 3)
        keys = np.arange(27)[::-1].copy()
        lattice, ledger = sorter.sort_sequence(keys)
        assert repro.is_snake_sorted(lattice)
        assert ledger.total_rounds > 0

    def test_machine_sorter(self):
        ms = repro.MachineSorter.for_factor(repro.k2(), 3)
        machine, _ = ms.sort(np.arange(8)[::-1].copy())
        assert repro.is_snake_sorted(machine.lattice())

    def test_merge_and_sort(self):
        assert repro.multiway_merge([[0, 2, 4, 6], [1, 3, 5, 7]]) == list(range(8))
        assert repro.multiway_merge_sort([3, 1, 2, 0], 2) == [0, 1, 2, 3]

    def test_baselines(self):
        assert repro.batcher_odd_even_merge_sort([3, 1, 2, 0]) == [0, 1, 2, 3]
        assert repro.bitonic_sort([3, 1, 2, 0]) == [0, 1, 2, 3]
        out, _ = repro.columnsort([3, 1, 2, 0], 2, 2)
        assert out == [0, 1, 2, 3]

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_real_name


class TestDocstringQuickstart:
    def test_readme_snippet_runs(self):
        """The quickstart in ``repro.__doc__`` must actually work."""
        from repro import ProductNetworkSorter, path_graph

        sorter = ProductNetworkSorter.for_factor(path_graph(4), r=3)
        keys = np.random.default_rng(0).integers(0, 100, size=sorter.network.num_nodes)
        lattice, cost = sorter.sort_sequence(keys)
        assert repro.is_snake_sorted(lattice)
        assert cost.s2_calls == 4
