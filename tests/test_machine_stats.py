"""Tests for the machine traffic recorder."""

from __future__ import annotations

import numpy as np

from repro.core.machine_sort import MachineSorter
from repro.graphs import ProductGraph, complete_binary_tree, path_graph
from repro.machine.machine import NetworkMachine
from repro.machine.stats import TrafficRecorder


def _run_sort_with_recorder(factor, r, rng):
    ms = MachineSorter.for_factor(factor, r)
    keys = rng.integers(0, 2**20, size=ms.network.num_nodes)
    machine = NetworkMachine(ms.network, keys)
    recorder = TrafficRecorder(ms.network)
    machine.recorder = recorder
    # drive the sorter's phases manually through the shared machine
    root = ms.network.subgraph((), ())
    blocks = ms._pg2_blocks(root)
    ms.sorter.sort_batch(machine, blocks, [False] * len(blocks))
    for j in range(3, r + 1):
        from repro.machine.metrics import CostLedger

        ms._merge_batch(machine, ms._level_views(j), CostLedger())
    return machine, recorder


class TestRecorder:
    def test_counts_basic_step(self):
        net = ProductGraph(path_graph(3), 2)
        machine = NetworkMachine(net, np.arange(9))
        rec = TrafficRecorder(net)
        machine.recorder = rec
        machine.compare_exchange([((0, 0), (0, 1)), ((1, 0), (2, 0))])
        stats = rec.stats()
        assert stats.operations == 1 and stats.pair_count == 2
        assert stats.dimension_ops == {1: 1, 2: 1}
        assert stats.adjacent_pairs == 2 and stats.routed_pairs == 0
        assert stats.mean_parallelism == 2.0

    def test_routed_pairs_detected(self):
        net = ProductGraph(complete_binary_tree(2), 1)
        machine = NetworkMachine(net, np.arange(7))
        rec = TrafficRecorder(net)
        machine.recorder = rec
        machine.compare_exchange([((3,), (4,))])  # leaves: non-adjacent
        assert rec.stats().routed_pairs == 1

    def test_reset(self):
        net = ProductGraph(path_graph(3), 2)
        machine = NetworkMachine(net, np.arange(9))
        rec = TrafficRecorder(net)
        machine.recorder = rec
        machine.compare_exchange([((0, 0), (0, 1))])
        rec.reset()
        assert rec.stats().operations == 0

    def test_empty_stats(self):
        rec = TrafficRecorder(ProductGraph(path_graph(3), 2))
        stats = rec.stats()
        assert stats.operations == 0 and stats.mean_parallelism == 0.0
        assert stats.pair_count == 0 and stats.peak_node_utilisation == 0.0
        assert stats.dimension_ops == {} and stats.dimension_lanes == {}
        assert stats.adjacent_pairs == 0 and stats.routed_pairs == 0

    def test_reset_then_reuse_matches_fresh(self):
        net = ProductGraph(path_graph(3), 2)
        machine = NetworkMachine(net, np.arange(9))
        rec = TrafficRecorder(net)
        machine.recorder = rec
        pairs = [((0, 0), (0, 1)), ((1, 0), (2, 0))]
        machine.compare_exchange(pairs)
        rec.reset()
        assert rec.stats().operations == 0
        machine.compare_exchange([(hi, lo) for lo, hi in pairs])  # swap back
        reused = rec.stats()
        fresh_machine = NetworkMachine(net, np.arange(9))
        fresh = TrafficRecorder(net)
        fresh_machine.recorder = fresh
        fresh_machine.compare_exchange(pairs)
        assert reused == fresh.stats()

    def test_routed_vs_adjacent_counting_in_one_step(self):
        # a single super-step mixing an adjacent pair with a routed pair must
        # split the tally, and the routed subgraph must lift the step's cost
        net = ProductGraph(complete_binary_tree(2), 2)
        machine = NetworkMachine(net, np.arange(49))
        rec = TrafficRecorder(net)
        machine.recorder = rec
        # labels 0-1 are a tree edge; 3-4 are two leaves (non-adjacent)
        cost = machine.compare_exchange([((0, 0), (0, 1)), ((1, 3), (1, 4))])
        stats = rec.stats()
        assert stats.adjacent_pairs == 1 and stats.routed_pairs == 1
        assert stats.pair_count == 2 and stats.operations == 1
        assert cost > 1  # routing made the super-step cost more than one round


class TestSortTraffic:
    def test_full_sort_traffic_profile(self, rng):
        machine, rec = _run_sort_with_recorder(path_graph(3), 3, rng)
        from repro.orders import lattice_to_sequence

        seq = lattice_to_sequence(machine.lattice())
        assert np.all(np.diff(seq) >= 0)
        stats = rec.stats()
        # every dimension participates; dims {1,2} dominate (base sorts)
        assert set(stats.dimension_ops) == {1, 2, 3}
        assert stats.dimension_ops[1] > stats.dimension_ops[3]
        assert stats.dimension_ops[2] > stats.dimension_ops[3]
        # all traffic on a path factor is adjacent
        assert stats.routed_pairs == 0
        assert 0 < stats.peak_node_utilisation <= 1.0

    def test_dimension_lanes_bounded(self, rng):
        machine, rec = _run_sort_with_recorder(path_graph(3), 3, rng)
        stats = rec.stats()
        # each dimension has N^(r-1) = 9 factor subgraphs at most
        for d, lanes in stats.dimension_lanes.items():
            assert 1 <= lanes <= 9

    def test_tree_factor_routes(self, rng):
        machine, rec = _run_sort_with_recorder(complete_binary_tree(1), 2, rng)
        stats = rec.stats()
        assert stats.pair_count > 0
        # 3-node tree labelled 0-1-2 with edges 0-1, 0-2: consecutive labels
        # (1,2) are non-adjacent, so some pairs must route
        assert stats.routed_pairs > 0
