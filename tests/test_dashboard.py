"""Tests for the flight-recorder dashboards and their HTTP plumbing.

Covers :func:`panel_series` derivations, the terminal renderer (alert
badges, relative event times, sparkline panels, the queue table), the
standalone HTML dashboard (SVG sparklines, meta refresh, palette tokens,
escaping), the ``/dashboard`` / ``/alerts.json`` / ``/tsdb.json`` routes on
a live :class:`MetricsServer`, the ``fetch_dashboard_inputs`` round trip,
and the ``repro dash`` CLI in demo and ``--html`` modes.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.observability.dashboard import (
    dashboard_html,
    fetch_dashboard_inputs,
    flight_recorder_routes,
    panel_series,
    render_dashboard,
)
from repro.observability.httpexpo import MetricsServer
from repro.observability.metrics import MetricsRegistry
from repro.observability.slo import SLOEvaluator, default_serve_slos
from repro.observability.tsdb import TimeSeriesStore


def _recorder() -> tuple[MetricsRegistry, TimeSeriesStore]:
    """A store over serve-shaped metrics with a few deterministic ticks."""
    registry = MetricsRegistry()
    requests = registry.counter("repro_serve_requests_total")
    sheds = registry.counter("repro_serve_rejections_total")
    depth = registry.gauge("repro_serve_queue_depth")
    lat = registry.histogram("repro_serve_request_seconds", buckets=(0.05, 0.25, 1.0))
    wait = registry.histogram("repro_serve_queue_wait_seconds", buckets=(0.05, 0.25, 1.0))
    store = TimeSeriesStore(registry, interval_s=1.0, clock=lambda: 0.0)
    store.tick(now=0.0)
    for t in range(1, 5):
        requests.inc(20, cell="path(3)-n3-r3")
        sheds.inc(1, cell="path(3)-n3-r3", reason="queue_full")
        depth.set(float(t), cell="path(3)-n3-r3")
        for _ in range(5):
            lat.observe(0.02, cell="path(3)-n3-r3")
            wait.observe(0.01, cell="path(3)-n3-r3")
        lat.observe(0.4, cell="path(3)-n3-r3")
        store.tick(now=float(t))
    return registry, store


_QUEUES = {
    "path(3)-n3-r3": {
        "depth": 3, "peak_depth": 9, "completed": 80, "rejected": 4,
        "errors": 0, "p50_ms": 1.2, "p99_ms": 8.5,
        "queue_wait_p50_ms": 0.4, "queue_wait_p99_ms": 2.75,
    }
}


def _alerts_doc(store: TimeSeriesStore) -> dict:
    evaluator = SLOEvaluator(store, list(default_serve_slos(window_scale=0.05)))
    evaluator.evaluate(store.last_tick)
    return evaluator.snapshot(store.last_tick)


class TestPanelSeries:
    def test_panels_cover_the_five_serving_signals(self):
        _, store = _recorder()
        panels = panel_series(store)
        assert [p["label"] for p in panels] == [
            "requests/s", "sheds/s", "queue depth", "request p99", "queue-wait p99",
        ]
        by_label = {p["label"]: p for p in panels}
        # 20 req/s sampled every 1s
        assert by_label["requests/s"]["values"][-1] == pytest.approx(20.0)
        assert by_label["queue depth"]["last"] == pytest.approx(4.0)
        # p99 panels are displayed in milliseconds
        assert by_label["request p99"]["unit"] == "ms"
        assert 250.0 < by_label["request p99"]["last"] <= 1000.0

    def test_empty_store_yields_empty_panels(self):
        registry = MetricsRegistry()
        store = TimeSeriesStore(registry, clock=lambda: 0.0)
        for panel in panel_series(store):
            assert panel["values"] == [] and panel["last"] is None


class TestTerminalRenderer:
    def test_renders_panels_alerts_and_queues(self):
        _, store = _recorder()
        text = render_dashboard(
            store, alerts=_alerts_doc(store), queues=_QUEUES, window_s=60.0
        )
        assert "flight recorder - 5 samples @ 1s, window 60s" in text
        assert "alerts:" in text and "serve-availability" in text
        assert "requests/s" in text and "queue-wait p99" in text
        assert "path(3)-n3-r3" in text
        assert "2.8" in text  # queue_wait_p99_ms, 1-digit formatting

    def test_event_times_render_relative_to_the_snapshot(self):
        _, store = _recorder()
        alerts = _alerts_doc(store)
        alerts["alerts"][0]["events"] = [
            {"kind": "firing", "from": "ok", "to": "page", "time": store.last_tick - 2.5}
        ]
        text = render_dashboard(store, alerts=alerts)
        assert "-2.50s" in text
        assert "t=" not in text.split("panels:")[0]

    def test_alert_free_render_needs_no_alert_doc(self):
        _, store = _recorder()
        text = render_dashboard(store)
        assert "alerts:" not in text and "panels:" in text


class TestHtmlRenderer:
    def test_page_structure_and_palette(self):
        _, store = _recorder()
        page = dashboard_html(store, alerts=_alerts_doc(store), queues=_QUEUES)
        assert page.startswith("<!DOCTYPE html>")
        assert '<meta http-equiv="refresh" content="2">' in page
        assert page.count("<svg") == 5  # one sparkline per panel
        assert "<polyline" in page and "var(--series-1)" in page
        assert 'class="viz-root"' in page
        assert "prefers-color-scheme: dark" in page  # selected dark mode
        assert "serve-availability" in page
        assert "<table>" in page and "path(3)-n3-r3" in page

    def test_no_refresh_when_disabled(self):
        _, store = _recorder()
        page = dashboard_html(store, refresh_s=None)
        assert "http-equiv" not in page

    def test_titles_are_escaped(self):
        _, store = _recorder()
        page = dashboard_html(store, title="<script>alert(1)</script>")
        assert "<script>" not in page
        assert "&lt;script&gt;" in page

    def test_empty_panels_render_a_no_data_svg(self):
        registry = MetricsRegistry()
        store = TimeSeriesStore(registry, clock=lambda: 0.0)
        page = dashboard_html(store)
        assert 'aria-label="no data"' in page


class TestRoutes:
    @pytest.fixture()
    def server(self):
        registry, store = _recorder()
        evaluator = SLOEvaluator(store, list(default_serve_slos(window_scale=0.05)))
        routes = flight_recorder_routes(
            store, evaluator, queues_fn=lambda: _QUEUES, max_points=3
        )
        server = MetricsServer(registry, handlers=routes)
        server.start()
        try:
            yield server
        finally:
            server.stop()

    @staticmethod
    def _get(server: MetricsServer, path: str) -> tuple[int, str, bytes]:
        try:
            with urllib.request.urlopen(server.url(path), timeout=5.0) as resp:
                return resp.status, resp.headers.get("Content-Type", ""), resp.read()
        except urllib.error.HTTPError as err:
            return err.code, err.headers.get("Content-Type", ""), err.read()

    def test_tsdb_json_is_downsampled_and_rebuildable(self, server):
        status, ctype, body = self._get(server, "/tsdb.json")
        assert status == 200 and ctype.startswith("application/json")
        doc = json.loads(body)
        clone = TimeSeriesStore.from_json(doc)
        assert clone.series_names()
        assert all(len(s["points"]) <= 3 for s in doc["series"])

    def test_alerts_json_reevaluates_per_request(self, server):
        status, _ctype, body = self._get(server, "/alerts.json")
        assert status == 200
        doc = json.loads(body)
        assert [a["spec"]["name"] for a in doc["alerts"]] == [
            s.name for s in default_serve_slos()
        ]

    def test_dashboard_serves_html(self, server):
        status, ctype, body = self._get(server, "/dashboard")
        assert status == 200 and ctype.startswith("text/html")
        text = body.decode()
        assert "<svg" in text and "serve-availability" in text

    def test_fetch_dashboard_inputs_round_trip(self, server):
        store, alerts, queues = fetch_dashboard_inputs(server.url(""))
        assert store.registry is None  # detached, query-only
        assert store.series_names()
        assert alerts is not None and alerts["severities"]
        assert queues is None  # this server mounts no /queues.json
        # and the fetched inputs render
        assert "panels:" in render_dashboard(store, alerts=alerts)

    def test_alerts_404_without_an_evaluator(self):
        registry, store = _recorder()
        server = MetricsServer(registry, handlers=flight_recorder_routes(store))
        server.start()
        try:
            status, _ctype, body = self._get(server, "/alerts.json")
            assert status == 404 and b"no SLO evaluator" in body
        finally:
            server.stop()


class TestDashCli:
    def test_demo_mode_prints_a_dashboard(self, capsys):
        from repro.cli import main

        rc = main([
            "dash", "--requests", "40", "--rate", "2000", "--seed", "7",
            "--window", "30",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flight recorder" in out and "panels:" in out
        assert "alerts:" in out and "queues:" in out

    def test_html_flag_writes_the_page(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "dash.html"
        rc = main([
            "dash", "--requests", "40", "--rate", "2000", "--seed", "7",
            "--html", str(out_path),
        ])
        capsys.readouterr()
        assert rc == 0
        page = out_path.read_text()
        assert page.startswith("<!DOCTYPE html>") and "<svg" in page
        assert "http-equiv" not in page  # a written file must not self-refresh

    def test_unreachable_target_fails_cleanly(self, capsys):
        from repro.cli import main

        rc = main(["dash", "--target", "http://127.0.0.1:9/"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "cannot fetch" in err
