"""Tests for the static schedule verifier (``repro.staticcheck``).

Covers DAG extraction on both backends (structure, replay equivalence,
canonical hashing), the obliviousness certificate (fixed adversarial key
sets plus a Hypothesis property over random key arrays), each lint's pass
verdict on the canonical workload matrix, each lint's failure verdict on
hand-built bad schedules, and the ``repro check`` CLI surface.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.graphs import cycle_graph, k2, path_graph
from repro.graphs.product import ProductGraph
from repro.observability.benchreg import DEFAULT_MATRIX
from repro.staticcheck import (
    LINT_NAMES,
    ComparatorDAG,
    ComparatorOp,
    SchedulePhase,
    ScheduleRound,
    adversarial_key_sets,
    certify_oblivious,
    extract_schedule,
    lint_depth,
    lint_links,
    lint_races,
    lint_zero_one,
    replay,
    run_check,
    snake_order_nodes,
    verify_dag,
)
from repro.analysis.complexity import sort_routing_calls, sort_s2_calls

BACKENDS = ("lattice", "machine")


# ----------------------------------------------------------------------
# extraction: structure
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("factor,r", [(path_graph(3), 2), (path_graph(3), 3), (k2(), 4)])
def test_extracted_phase_structure_matches_theorem1(factor, r, backend):
    dag = extract_schedule(factor, r, backend=backend, seed=0).dag
    s2 = [p for p in dag.phases if p.kind == "s2"]
    routing = [p for p in dag.phases if p.kind == "routing"]
    assert len(s2) == sort_s2_calls(r)
    assert len(routing) == sort_routing_calls(r)
    # paths share the tracer vocabulary and start at the sort root
    assert all(p.path[0] == "sort" for p in dag.phases)
    assert dag.num_nodes == factor.n**r
    assert dag.backend == backend


@pytest.mark.parametrize("backend", BACKENDS)
def test_extracted_depth_matches_ledger(backend):
    res = extract_schedule(path_graph(3), 3, backend=backend, seed=0)
    assert res.dag.depth == res.ledger.total_rounds


def test_lattice_and_machine_share_phase_paths():
    lat = extract_schedule(path_graph(3), 3, backend="lattice", seed=0).dag
    mac = extract_schedule(path_graph(3), 3, backend="machine", seed=0).dag
    assert [p.path for p in lat.phases] == [p.path for p in mac.phases]


def test_phase_helpers():
    phase = SchedulePhase(
        index=0,
        path=("sort", "merge[d4]", "column-merges[d4]", "merge[d3]",
              "cleanup[d3]", "transposition[d3,p0]"),
        kind="routing",
        dim=3,
        charged_rounds=2,
    )
    assert phase.leaf == "transposition"
    assert phase.merge_depth == 2
    assert list(phase.merge_prefixes()) == [
        (("sort", "merge[d4]"), 4),
        (("sort", "merge[d4]", "column-merges[d4]", "merge[d3]"), 3),
    ]


# ----------------------------------------------------------------------
# replay equivalence: the DAG *is* the sorter
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("factor,r", [(path_graph(3), 3), (k2(), 3), (cycle_graph(4), 2)])
def test_replay_reproduces_backend_output(factor, r, backend, rng):
    dag = extract_schedule(factor, r, backend=backend, seed=0).dag
    keys = rng.integers(0, 1000, size=dag.num_nodes)
    res = extract_schedule(factor, r, backend=backend, keys=keys.copy())
    assert np.array_equal(replay(dag, keys), res.output)
    # and the replayed snake sequence is sorted
    assert np.all(np.diff(replay(dag, keys)[snake_order_nodes(factor.n, r)]) >= 0)


def test_replay_batch_and_shape_validation():
    dag = extract_schedule(k2(), 2, backend="machine").dag
    batch = np.array([[3, 1, 2, 0], [0, 1, 2, 3]])
    out = replay(dag, batch)
    assert out.shape == batch.shape
    snake = snake_order_nodes(2, 2)
    assert np.all(np.diff(out[:, snake], axis=1) >= 0)
    with pytest.raises(ValueError):
        replay(dag, np.zeros(3))


# ----------------------------------------------------------------------
# obliviousness
# ----------------------------------------------------------------------

def test_adversarial_key_sets_shapes():
    sets = adversarial_key_sets(8, seed=1)
    assert set(sets) == {"ascending", "descending", "constant", "alternating", "random"}
    assert all(v.shape == (8,) for v in sets.values())


@pytest.mark.parametrize("backend", BACKENDS)
def test_certify_oblivious(backend):
    cert = certify_oblivious(path_graph(3), 3, backend=backend, seed=0)
    assert cert.ok
    assert len(set(cert.hashes.values())) == 1
    assert "identical" in cert.describe()


def test_schedule_hash_stable_across_extractions():
    a = extract_schedule(k2(), 3, backend="machine", seed=0).dag
    b = extract_schedule(k2(), 3, backend="machine", seed=99).dag
    assert a.schedule_hash() == b.schedule_hash()
    # but geometry changes the hash
    c = extract_schedule(k2(), 4, backend="machine", seed=0).dag
    assert a.schedule_hash() != c.schedule_hash()


@given(
    backend=st.sampled_from(BACKENDS),
    keys=st.lists(st.integers(-1000, 1000), min_size=8, max_size=8),
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_extraction_is_input_oblivious(backend, keys):
    """The DAG hash is a function of (G, N, r) alone — never of the keys."""
    reference = extract_schedule(k2(), 3, backend=backend, seed=0).dag
    probed = extract_schedule(
        k2(), 3, backend=backend, keys=np.array(keys, dtype=np.int64)
    ).dag
    assert probed.schedule_hash() == reference.schedule_hash()


# ----------------------------------------------------------------------
# lints: pass verdicts on real schedules
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "factor,r,backend",
    [
        (path_graph(3), 3, "lattice"),  # factored zero-one (27 nodes)
        (path_graph(3), 3, "machine"),  # factored + expanded comparators
        (k2(), 4, "machine"),           # exhaustive at the 16-node limit
        (path_graph(3), 2, "lattice"),  # r = 2 degenerate (no merge)
    ],
)
def test_verify_dag_passes_on_real_schedules(factor, r, backend):
    dag = extract_schedule(factor, r, backend=backend, seed=0).dag
    report = verify_dag(dag, network=ProductGraph(factor, r))
    assert report.ok, report.describe()
    assert report.exit_code == 0
    assert report.failed_lints == []
    zo = report.results["zero-one"]
    assert zo.stats["lemma1_max_dirty"] <= zo.stats["lemma1_bound"]


def test_zero_one_factored_mode_engages_above_exhaustive_limit():
    dag = extract_schedule(path_graph(3), 3, backend="lattice").dag
    res = lint_zero_one(dag)
    assert res.ok
    assert res.stats["mode"] == "factored"
    assert res.stats["states"] == (9 + 1) ** 3
    exhaustive = lint_zero_one(extract_schedule(k2(), 3, backend="machine").dag)
    assert exhaustive.stats["mode"] == "exhaustive"
    assert exhaustive.stats["states"] == 2**8


def test_depth_lint_accepts_analytic_models_on_lattice():
    from repro.core.lattice_sort import ProductNetworkSorter

    factor = path_graph(3)
    sorter = ProductNetworkSorter.for_factor(factor, 3)
    dag = extract_schedule(factor, 3, backend="lattice").dag
    res = lint_depth(
        dag,
        s2_model_rounds=sorter.sorter2d.rounds(3),
        routing_model_rounds=sorter.routing.rounds(3),
    )
    assert res.ok, [f.message for f in res.findings]
    assert res.stats["depth"] == dag.depth


# ----------------------------------------------------------------------
# lints: failure verdicts on hand-built bad schedules
# ----------------------------------------------------------------------

def _tiny_dag(rounds, phases=None, n=2, r=2):
    """A hand-built DAG over the 2x2 lattice (4 nodes)."""
    if phases is None:
        phases = (
            SchedulePhase(
                index=0,
                path=("sort", "initial-block-sorts[d2]"),
                kind="s2",
                dim=2,
                charged_rounds=sum(rd.charge for rd in rounds),
            ),
        )
    return ComparatorDAG(
        backend="synthetic",
        factor="K2",
        n=n,
        r=r,
        num_nodes=n**r,
        phases=phases,
        rounds=tuple(rounds),
    )


def test_race_lint_flags_double_booked_node():
    dag = _tiny_dag([
        ScheduleRound(
            index=0, phase=0, charge=1,
            comparators=(ComparatorOp(0, 1), ComparatorOp(1, 3)),
        )
    ])
    res = lint_races(dag)
    assert not res.ok
    assert "node 1" in res.findings[0].message


def test_race_lint_accepts_disjoint_round():
    dag = _tiny_dag([
        ScheduleRound(
            index=0, phase=0, charge=1,
            comparators=(ComparatorOp(0, 1), ComparatorOp(2, 3)),
        )
    ])
    assert lint_races(dag).ok


def test_link_lint_flags_multi_dimension_pair():
    # nodes 0=(0,0) and 3=(1,1) differ in two positions
    dag = _tiny_dag([
        ScheduleRound(index=0, phase=0, charge=1, comparators=(ComparatorOp(0, 3),))
    ])
    res = lint_links(dag, ProductGraph(k2(), 2))
    assert not res.ok
    assert "not within a single G subgraph" in res.findings[0].message


def test_link_lint_flags_self_pair_and_counts_adjacency():
    dag = _tiny_dag([
        ScheduleRound(
            index=0, phase=0, charge=1,
            comparators=(ComparatorOp(2, 2), ComparatorOp(0, 1)),
        )
    ])
    res = lint_links(dag, ProductGraph(k2(), 2))
    assert not res.ok
    assert "degenerate" in res.findings[0].message
    assert res.stats["adjacent_pairs"] == 1


def test_link_lint_checks_block_snake_order():
    from repro.staticcheck import BlockSortOp

    # a real 2x2 block but with the node list not in snake order
    good = extract_schedule(k2(), 2, backend="lattice").dag
    blk = good.rounds[0].block_sorts[0]
    scrambled = BlockSortOp(nodes=tuple(reversed(blk.nodes)), descending=blk.descending)
    bad = _tiny_dag([
        ScheduleRound(index=0, phase=0, charge=1, block_sorts=(scrambled,))
    ])
    res = lint_links(bad, ProductGraph(k2(), 2))
    assert not res.ok
    assert "snake order" in res.findings[0].message
    assert lint_links(good, ProductGraph(k2(), 2)).ok


def test_zero_one_lint_flags_wrong_direction():
    # a single descending comparator on a 1-dimensional pair never sorts
    dag = _tiny_dag([
        ScheduleRound(
            index=0, phase=0, charge=1,
            comparators=(ComparatorOp(1, 0), ComparatorOp(2, 3)),
        )
    ])
    res = lint_zero_one(dag)
    assert not res.ok
    assert "unsorted" in res.findings[0].message or "unsortable" in res.findings[0].message


def test_depth_lint_flags_missing_phase():
    dag = extract_schedule(path_graph(3), 3, backend="lattice").dag
    # drop the last phase wholesale
    phases = dag.phases[:-1]
    rounds = tuple(rd for rd in dag.rounds if rd.phase < len(phases))
    broken = ComparatorDAG(
        backend=dag.backend, factor=dag.factor, n=dag.n, r=dag.r,
        num_nodes=dag.num_nodes, phases=phases, rounds=rounds,
    )
    res = lint_depth(broken)
    assert not res.ok
    assert any("Theorem 1" in f.message for f in res.findings)


def test_depth_lint_flags_inconsistent_charge():
    dag = extract_schedule(k2(), 3, backend="machine").dag
    phases = list(dag.phases)
    p = phases[0]
    phases[0] = SchedulePhase(
        index=p.index, path=p.path, kind=p.kind, dim=p.dim,
        charged_rounds=p.charged_rounds + 1,
    )
    broken = ComparatorDAG(
        backend=dag.backend, factor=dag.factor, n=dag.n, r=dag.r,
        num_nodes=dag.num_nodes, phases=tuple(phases), rounds=dag.rounds,
    )
    res = lint_depth(broken)
    assert not res.ok
    assert any("sum to" in f.message for f in res.findings)


def test_verify_dag_rejects_unknown_lint():
    dag = extract_schedule(k2(), 2, backend="machine").dag
    with pytest.raises(ValueError, match="unknown lint"):
        verify_dag(dag, lints=("bogus",))
    with pytest.raises(ValueError, match="links lint needs"):
        verify_dag(dag, lints=("links",))


# ----------------------------------------------------------------------
# checker driver + CLI
# ----------------------------------------------------------------------

def test_run_check_covers_full_matrix():
    run = run_check()
    assert run.ok and run.exit_code == 0
    assert [c.cell.key for c in run.cells] == [c.key for c in DEFAULT_MATRIX]
    for check in run.cells:
        assert check.certificate.ok
        assert set(check.report.results) == set(LINT_NAMES)
    payload = run.to_json()
    assert payload["ok"] and len(payload["cells"]) == len(DEFAULT_MATRIX)


def test_run_check_cell_filter_and_unknown_cell():
    run = run_check(only=["k2-n2-r3-machine"], lints=("races", "depth"))
    assert [c.cell.key for c in run.cells] == ["k2-n2-r3-machine"]
    assert set(run.cells[0].report.results) == {"races", "depth"}
    with pytest.raises(ValueError, match="unknown cell"):
        run_check(only=["nope"])


def test_cli_check_single_cell(capsys):
    assert main(["check", "--races", "--links", "--cell", "k2-n2-r3-machine"]) == 0
    out = capsys.readouterr().out
    assert "k2-n2-r3-machine" in out
    assert "static check: ok" in out


def test_cli_check_json(capsys):
    assert main(["check", "--depth", "--cell", "path-n3-r2-lattice", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"]
    assert payload["cells"][0]["cell"] == "path-n3-r2-lattice"
    assert payload["cells"][0]["lints"]["depth"]["ok"]


def test_cli_check_unknown_cell_exits_2(capsys):
    assert main(["check", "--cell", "nope"]) == 2
    assert "unknown cell" in capsys.readouterr().err
