"""Executable checks for the code snippets in docs/api_tour.md.

Documentation that runs is documentation that stays true.
"""

from __future__ import annotations

import numpy as np


def test_sort_something_snippet():
    from repro import ProductNetworkSorter, lattice_to_sequence, path_graph

    sorter = ProductNetworkSorter.for_factor(path_graph(4), r=3)
    keys = np.random.default_rng(0).integers(0, 1000, size=64)
    lattice, ledger = sorter.sort_sequence(keys)
    assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))
    assert ledger.total_rounds > 0
    assert ledger.s2_calls == 4


def test_bring_your_own_topology_snippet():
    from repro import FactorGraph, ProductNetworkSorter, lattice_to_sequence

    g = FactorGraph.from_edge_list(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)])
    g = g.canonically_labelled()
    sorter = ProductNetworkSorter.for_factor(g, r=3)
    keys = np.random.default_rng(1).integers(0, 100, size=125)
    lattice, _ = sorter.sort_sequence(keys)
    assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))


def test_cost_model_snippet():
    from repro import ProductNetworkSorter, path_graph
    from repro.sorters2d import (
        AdjacentStepRoutingModel,
        MeasuredExecutableModel,
        ShearSorter,
    )

    g = path_graph(4)
    sorter = ProductNetworkSorter.for_factor(
        g,
        3,
        sorter2d=MeasuredExecutableModel("shear", g, ShearSorter()),
        routing=AdjacentStepRoutingModel(g),
    )
    keys = np.random.default_rng(2).integers(0, 100, size=64)
    _, ledger = sorter.sort_sequence(keys)
    assert ledger.routing_rounds == 2 * 1  # adjacent-step R = 1 on a path


def test_fine_grained_snippet():
    from repro import MachineSorter, path_graph
    from repro.machine.stats import TrafficRecorder

    ms = MachineSorter.for_factor(path_graph(3), 3)
    keys = np.random.default_rng(3).integers(0, 100, size=27)
    machine, ledger = ms.sort(keys)
    assert machine.rounds == ledger.total_rounds
    assert machine.lattice().shape == (3, 3, 3)
    assert isinstance(TrafficRecorder(ms.network).stats().operations, int)


def test_sequence_and_network_snippet():
    from repro import multiway_merge, multiway_merge_sort
    from repro.core.network_builder import multiway_sort_network

    assert multiway_merge([[0, 2, 4, 6], [1, 3, 5, 7]]) == list(range(8))
    keys = list(np.random.default_rng(4).integers(0, 50, size=81))
    assert multiway_merge_sort(keys, n=3) == sorted(keys)
    net = multiway_sort_network(3, 3)
    assert net.depth > 0 and net.size > 0
    small = list(np.random.default_rng(5).integers(0, 9, size=27))
    assert net.normalized().apply(small) == sorted(small)


def test_predictions_snippet():
    from repro import path_graph
    from repro.analysis import measure_sort, network_prediction

    assert network_prediction(path_graph(8), 3).total_rounds > 0
    assert measure_sort(path_graph(8), 3).matches_theorem1


def test_extensions_snippet():
    from repro.core.adaptive import AdaptiveProductNetworkSorter
    from repro.extensions import bulk_multiway_merge_sort, randomized_slab_sort
    from repro import path_graph

    assert AdaptiveProductNetworkSorter.for_factor(path_graph(3), 3) is not None
    keys = list(np.random.default_rng(6).integers(0, 100, size=54))
    out, _ = bulk_multiway_merge_sort(keys, 3, 2)
    assert out == sorted(keys)
    keys2 = list(np.random.default_rng(7).integers(0, 10**6, size=64))
    import random

    out2, _ = randomized_slab_sort(keys2, 4, 3, slack=1.5, rng=random.Random(0))
    assert out2 == sorted(keys2)


def test_viz_snippet():
    from repro.viz import render_snake_path

    assert "0 -> 1 -> 2" in render_snake_path(3)
