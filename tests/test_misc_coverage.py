"""Targeted edge-case and regression tests across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lattice_sort import ProductNetworkSorter, SortOutcome
from repro.core.machine_sort import (
    MachineSorter,
    _fix_reduced_position,
    _fix_reduced_prefix,
    _kept_positions,
)
from repro.graphs import (
    FactorGraph,
    ProductGraph,
    cycle_embedding,
    path_graph,
    random_connected_graph,
)
from repro.machine.metrics import CostLedger
from repro.orders.gray import gray_rank, rank_lattice


class TestCycleEmbeddingRegression:
    def test_hamiltonian_path_with_distant_endpoints(self):
        """Regression: a factor whose Hamiltonian path cannot close cheaply
        must fall back to the spanning-tree order (found via
        random_connected_graph(6, 0.15, seed=0), where the naive closing
        edge had dilation 5)."""
        g = random_connected_graph(6, extra_edge_prob=0.15, seed=0)
        emb = cycle_embedding(g)
        assert emb.dilation <= 3
        assert len(emb.paths) == 6  # cyclic: closing path included

    def test_tree_linear_order_ends_near_start(self):
        """The Sekanina order's last node is adjacent to its first in the
        spanning tree — the property the cycle fallback relies on."""
        for seed in range(5):
            g = random_connected_graph(7, extra_edge_prob=0.1, seed=seed)
            order = g.tree_linear_order
            assert len(g.shortest_path(order[-1], order[0])) - 1 <= 3


class TestSubgraphNestingHelpers:
    def test_kept_positions(self):
        net = ProductGraph(path_graph(3), 4)
        view = net.subgraph((2, 4), (1, 0))
        assert _kept_positions(view) == [1, 3]

    def test_fix_reduced_position(self):
        net = ProductGraph(path_graph(3), 3)
        root = net.subgraph((), ())
        sub = _fix_reduced_position(root, 1, 2)  # fix the rightmost symbol
        assert sub.positions == (1,) and sub.values == (2,)
        subsub = _fix_reduced_position(sub, 1, 0)
        # the sub-view's position 1 is the original position 2
        assert subsub.positions == (1, 2) and subsub.values == (2, 0)

    def test_fix_reduced_prefix(self):
        net = ProductGraph(path_graph(3), 4)
        root = net.subgraph((), ())
        block = _fix_reduced_prefix(root, (1, 2))  # x4 = 1, x3 = 2
        assert block.reduced_order == 2
        full = block.full_label((0, 0))
        assert full == (1, 2, 0, 0)

    def test_level_views_cover_everything(self):
        ms = MachineSorter.for_factor(path_graph(3), 4)
        views = ms._level_views(3)
        assert len(views) == 3
        seen = set()
        for view in views:
            seen.update(view.nodes())
        assert len(seen) == 81

    def test_pg2_blocks_in_group_rank_order(self):
        ms = MachineSorter.for_factor(path_graph(3), 3)
        blocks = ms._pg2_blocks(ms.network.subgraph((), ()))
        assert len(blocks) == 3
        # block z's prefix is the group label of gray rank z
        prefixes = [b.values[-1] for b in blocks]
        assert prefixes == [0, 1, 2]


class TestSortOutcome:
    def test_named_and_tuple_access(self, rng):
        sorter = ProductNetworkSorter.for_factor(path_graph(3), 2)
        outcome = sorter.sort_sequence(rng.integers(0, 10, 9))
        assert isinstance(outcome, SortOutcome)
        lattice, ledger = outcome
        assert outcome.lattice is lattice
        assert outcome.ledger is ledger


class TestGrayEdgeCases:
    def test_r1_rank_lattice(self):
        lat = rank_lattice(4, 1)
        assert list(lat) == [0, 1, 2, 3]

    def test_ranks_are_a_bijection(self):
        n, r = 4, 3
        ranks = {gray_rank(lab, n) for lab in np.ndindex(*(n,) * r)}
        assert ranks == set(range(n**r))


class TestLedgerRecords:
    def test_phase_record_fields(self):
        ledger = CostLedger()
        ledger.charge_s2(5, detail="demo", comparisons=7)
        rec = ledger.records[0]
        assert rec.phase == "S2" and rec.rounds == 5 and rec.comparisons == 7
        assert "CostLedger" in str(ledger)


class TestFactorGraphMisc:
    def test_relabel_preserves_hint_validity(self):
        g = path_graph(4)
        relabelled = g.relabel([3, 2, 1, 0])
        assert relabelled.hamiltonian_hint == (3, 2, 1, 0)
        assert relabelled.labels_follow_hamiltonian_path  # reversal is still a path

    def test_single_node_graph(self):
        g = FactorGraph.from_edge_list(1, [], name="point")
        assert g.hamiltonian_path == (0,)
        with pytest.raises(ValueError):
            ProductGraph(g, 2)  # factor must have >= 2 nodes

    def test_canonical_labelling_idempotent_for_paths(self):
        g = path_graph(5)
        assert g.canonically_labelled().labels_follow_hamiltonian_path


class TestMachineSorterEdge:
    def test_r2_has_no_merge_rounds(self, rng):
        ms = MachineSorter.for_factor(path_graph(3), 2)
        keys = rng.integers(0, 100, size=9)
        _, ledger = ms.sort(keys)
        assert ledger.s2_calls == 1 and ledger.routing_calls == 0

    def test_heterogeneous_batch_rejected(self):
        ms = MachineSorter.for_factor(path_graph(3), 3)
        import numpy as np

        from repro.machine.machine import NetworkMachine

        machine = NetworkMachine(ms.network, np.arange(27))
        v3 = ms.network.subgraph((), ())
        v2 = ms.network.subgraph((1,), (0,))
        with pytest.raises(ValueError):
            ms._merge_batch(machine, [v3, v2], CostLedger())
