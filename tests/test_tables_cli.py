"""Tests for the table machinery and the experiment CLI."""

from __future__ import annotations

import pytest

from repro.analysis.tables import (
    format_markdown_table,
    ledger_breakdown,
    measure_sort,
    render_table,
    section5_rows,
)
from repro.cli import build_parser, main
from repro.graphs import cycle_graph, k2, path_graph
from repro.machine.metrics import CostLedger


class TestMeasureSort:
    def test_row_matches(self):
        row = measure_sort(path_graph(3), 3)
        assert row.sorted_ok
        assert row.matches_theorem1
        assert row.prediction.factor_name == "path(3)"

    def test_section5_rows(self):
        rows = section5_rows([(path_graph(3), 2), (k2(), 3)])
        assert len(rows) == 2
        assert all(r.sorted_ok and r.matches_theorem1 for r in rows)


class TestRendering:
    def test_render_table_contains_headers_and_rows(self):
        rows = section5_rows([(cycle_graph(4), 3)])
        text = render_table(rows)
        assert "network" in text and "cycle(4)" in text and "measured" in text

    def test_markdown_table(self):
        md = format_markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_ledger_breakdown(self):
        ledger = CostLedger()
        ledger.charge_s2(5, detail="x")
        ledger.charge_routing(2, detail="y")
        text = ledger_breakdown(ledger)
        assert "S2" in text and "x" in text and "y" in text


class TestCostLedger:
    def test_absorb(self):
        a, b = CostLedger(), CostLedger()
        a.charge_s2(3)
        b.charge_routing(4)
        a.absorb(b)
        assert a.total_rounds == 7
        assert a.s2_calls == 1 and a.routing_calls == 1

    def test_summary(self):
        ledger = CostLedger()
        ledger.charge_s2(3, comparisons=10)
        s = ledger.summary()
        assert s["total_rounds"] == 3 and s["comparisons"] == 10

    def test_negative_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.charge_s2(-1)
        with pytest.raises(ValueError):
            ledger.charge_routing(-1)

    def test_keep_log_false_skips_records(self):
        ledger = CostLedger(keep_log=False)
        ledger.charge_s2(1)
        assert ledger.records == []


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("section5", "hypercube", "dirty-area", "gray", "worked-example"):
            assert cmd in text

    def test_gray_command(self, capsys):
        assert main(["gray", "--n", "3", "--r", "2"]) == 0
        out = capsys.readouterr().out
        assert "00 01 02 12 11 10 20 21 22" in out

    def test_dirty_area_command(self, capsys):
        assert main(["dirty-area", "--max-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "bound" in out

    def test_hypercube_command(self, capsys):
        assert main(["hypercube", "--max-r", "3"]) == 0
        out = capsys.readouterr().out
        assert "batcher" in out

    def test_worked_example_command(self, capsys):
        assert main(["worked-example"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 12" in out
        assert "0 4 4" in out  # the paper's A_0 array

    def test_section5_command(self, capsys):
        assert main(["section5", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "petersen" in out and "K2" in out
