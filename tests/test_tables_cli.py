"""Tests for the table machinery and the experiment CLI."""

from __future__ import annotations

import pytest

from repro.analysis.tables import (
    format_markdown_table,
    ledger_breakdown,
    measure_sort,
    render_table,
    section5_rows,
)
from repro.cli import build_parser, main
from repro.graphs import cycle_graph, k2, path_graph
from repro.machine.metrics import CostLedger


class TestMeasureSort:
    def test_row_matches(self):
        row = measure_sort(path_graph(3), 3)
        assert row.sorted_ok
        assert row.matches_theorem1
        assert row.prediction.factor_name == "path(3)"

    def test_section5_rows(self):
        rows = section5_rows([(path_graph(3), 2), (k2(), 3)])
        assert len(rows) == 2
        assert all(r.sorted_ok and r.matches_theorem1 for r in rows)


class TestRendering:
    def test_render_table_contains_headers_and_rows(self):
        rows = section5_rows([(cycle_graph(4), 3)])
        text = render_table(rows)
        assert "network" in text and "cycle(4)" in text and "measured" in text

    def test_markdown_table(self):
        md = format_markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_ledger_breakdown(self):
        ledger = CostLedger()
        ledger.charge_s2(5, detail="x")
        ledger.charge_routing(2, detail="y")
        text = ledger_breakdown(ledger)
        assert "S2" in text and "x" in text and "y" in text


class TestCostLedger:
    def test_absorb(self):
        a, b = CostLedger(), CostLedger()
        a.charge_s2(3)
        b.charge_routing(4)
        a.absorb(b)
        assert a.total_rounds == 7
        assert a.s2_calls == 1 and a.routing_calls == 1

    def test_summary(self):
        ledger = CostLedger()
        ledger.charge_s2(3, comparisons=10)
        s = ledger.summary()
        assert s["total_rounds"] == 3 and s["comparisons"] == 10

    def test_negative_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.charge_s2(-1)
        with pytest.raises(ValueError):
            ledger.charge_routing(-1)

    def test_keep_log_false_skips_records(self):
        ledger = CostLedger(keep_log=False)
        ledger.charge_s2(1)
        assert ledger.records == []

    def test_absorb_mixed_keep_log_settings(self):
        # logging absorber + silent absorbee: totals fold in, no records come
        logging, silent = CostLedger(keep_log=True), CostLedger(keep_log=False)
        logging.charge_s2(3, detail="mine")
        silent.charge_s2(5)
        silent.charge_routing(2)
        logging.absorb(silent)
        assert logging.s2_calls == 2 and logging.s2_rounds == 8
        assert logging.routing_calls == 1 and logging.total_rounds == 10
        assert [rec.detail for rec in logging.records] == ["mine"]

        # silent absorber + logging absorbee: totals fold in, log stays off
        silent2, logging2 = CostLedger(keep_log=False), CostLedger(keep_log=True)
        logging2.charge_routing(4, detail="theirs")
        silent2.absorb(logging2)
        assert silent2.routing_calls == 1 and silent2.routing_rounds == 4
        assert silent2.records == []

    def test_absorb_comparisons_accumulate(self):
        a, b = CostLedger(), CostLedger()
        a.charge_s2(1, comparisons=10)
        b.charge_routing(1, comparisons=7)
        a.absorb(b)
        assert a.comparisons == 17


class TestCli:
    def test_parser_has_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("section5", "hypercube", "dirty-area", "gray", "worked-example"):
            assert cmd in text

    def test_gray_command(self, capsys):
        assert main(["gray", "--n", "3", "--r", "2"]) == 0
        out = capsys.readouterr().out
        assert "00 01 02 12 11 10 20 21 22" in out

    def test_dirty_area_command(self, capsys):
        assert main(["dirty-area", "--max-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "bound" in out

    def test_hypercube_command(self, capsys):
        assert main(["hypercube", "--max-r", "3"]) == 0
        out = capsys.readouterr().out
        assert "batcher" in out

    def test_worked_example_command(self, capsys):
        assert main(["worked-example"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 12" in out
        assert "0 4 4" in out  # the paper's A_0 array

    def test_section5_command(self, capsys):
        assert main(["section5", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "petersen" in out and "K2" in out

    def test_section5_json(self, capsys):
        import json

        assert main(["section5", "--n", "3", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 9
        for row in rows:
            assert row["sorted_ok"] and row["matches_theorem1"]
            assert row["measured_s2_calls"] == (row["r"] - 1) ** 2
            assert row["predicted_rounds"] == row["measured_rounds"]

    def test_dirty_area_json(self, capsys):
        import json

        assert main(["dirty-area", "--max-n", "3", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["n"] for row in rows] == [2, 3]
        assert all(row["ok"] and row["max_dirty"] <= row["bound"] for row in rows)

    def test_trace_summary_command(self, capsys):
        assert main(["trace", "--factor", "path", "--n", "3", "--r", "3"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "transposition" in out and "super-steps" in out

    def test_trace_chrome_export_is_valid(self, tmp_path):
        import json

        out_file = tmp_path / "sort.trace.json"
        # acceptance: chrome export of a 3-dimensional product network
        assert main(
            ["trace", "--factor", "k2", "--r", "3", "--export", "chrome", "--out", str(out_file)]
        ) == 0
        doc = json.loads(out_file.read_text())
        assert "traceEvents" in doc and doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "M" in phases

    def test_trace_jsonl_lattice_backend(self, capsys):
        import json

        assert main(
            ["trace", "--factor", "path", "--n", "3", "--r", "3",
             "--backend", "lattice", "--export", "jsonl"]
        ) == 0
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.strip().splitlines()]
        s2 = [rec for rec in records if rec.get("kind") == "s2"]
        assert len(s2) == 4  # (r-1)^2 for r=3, straight from the event log
