"""Tests for the extended factor-topology library and end-to-end sorts on it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lattice_sort import ProductNetworkSorter
from repro.graphs import (
    caterpillar_graph,
    circulant_graph,
    complete_bipartite_graph,
    grid_2d_factor,
    hypercube_factor,
)
from repro.orders import lattice_to_sequence


class TestCompleteBipartite:
    def test_structure(self):
        g = complete_bipartite_graph(2, 3)
        assert g.n == 5 and len(g.edges) == 6
        assert g.has_edge(0, 3) and not g.has_edge(0, 1) and not g.has_edge(3, 4)

    def test_balanced_gets_hamiltonian_hint(self):
        """The hint zig-zags between the parts (a valid path, verified at
        construction); natural labels keep the parts contiguous, so the
        canonical relabelling is what makes labels follow it."""
        g = complete_bipartite_graph(3, 3)
        assert g.hamiltonian_hint is not None
        assert not g.labels_follow_hamiltonian_path
        assert g.canonically_labelled().labels_follow_hamiltonian_path

    def test_nearly_balanced(self):
        g = complete_bipartite_graph(3, 2)
        assert g.hamiltonian_hint is not None
        assert g.canonically_labelled().labels_follow_hamiltonian_path

    def test_unbalanced_has_no_path(self):
        g = complete_bipartite_graph(2, 4)
        assert g.hamiltonian_hint is None
        assert g.hamiltonian_path is None  # K_{2,4} genuinely has none

    def test_validation(self):
        with pytest.raises(ValueError):
            complete_bipartite_graph(0, 3)


class TestCirculant:
    def test_structure(self):
        g = circulant_graph(7, (1, 3))
        assert g.n == 7
        assert all(g.degree(u) == 4 for u in range(7))
        assert g.labels_follow_hamiltonian_path

    def test_offset_normalisation(self):
        g = circulant_graph(6, (1, 7, -5))  # all congruent to +-1
        assert all(g.degree(u) == 2 for u in range(6))

    def test_validation(self):
        with pytest.raises(ValueError):
            circulant_graph(2)
        with pytest.raises(ValueError):
            circulant_graph(6, (0, 6))


class TestCaterpillar:
    def test_structure(self):
        g = caterpillar_graph(3, 2)
        assert g.n == 9 and len(g.edges) == 8  # a tree
        assert g.degree(1) == 2 + 2  # spine node: 2 spine + 2 legs

    def test_bare_spine_is_path(self):
        g = caterpillar_graph(4, 0)
        assert g.labels_follow_hamiltonian_path

    def test_embedding_quality(self):
        """Caterpillar squares are Hamiltonian: dilation stays <= 3 and in
        practice small."""
        emb = caterpillar_graph(4, 1).linear_embedding()
        assert emb.dilation <= 3


class TestHypercubeFactor:
    def test_structure(self):
        g = hypercube_factor(3)
        assert g.n == 8 and len(g.edges) == 12
        assert all(g.degree(u) == 3 for u in range(8))

    def test_gray_code_hint(self):
        g = hypercube_factor(4)
        hint = g.hamiltonian_hint
        assert hint is not None
        for a, b in zip(hint, hint[1:]):
            assert bin(a ^ b).count("1") == 1  # single-bit steps


class TestGrid2DFactor:
    def test_structure(self):
        g = grid_2d_factor(3, 4)
        assert g.n == 12 and len(g.edges) == 3 * 3 + 2 * 4
        assert g.labels_follow_hamiltonian_path  # boustrophedon labels

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_2d_factor(0, 3)


class TestEndToEndSorts:
    """The portability claim extended to the new topologies."""

    @pytest.mark.parametrize(
        "factory,r",
        [
            (lambda: complete_bipartite_graph(2, 3), 3),
            (lambda: complete_bipartite_graph(2, 4), 2),
            (lambda: circulant_graph(6, (1, 2)), 3),
            (lambda: caterpillar_graph(3, 1), 2),
            (lambda: hypercube_factor(2), 3),
            (lambda: hypercube_factor(3), 2),
            (lambda: grid_2d_factor(2, 3), 2),
        ],
        ids=["K23", "K24", "circulant6", "caterpillar", "Q2", "Q3", "mesh2x3"],
    )
    def test_sorts(self, factory, r, rng):
        factor = factory()
        sorter = ProductNetworkSorter.for_factor(factor, r, keep_log=False)
        keys = rng.integers(0, 2**20, size=factor.n**r)
        lattice, ledger = sorter.sort_sequence(keys)
        assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))
        assert ledger.s2_calls == (r - 1) ** 2

    def test_product_of_meshes_is_4d_grid(self, rng):
        """A 2-level factorisation: the product of two 3x3 meshes sorts the
        same keys as the 4-dimensional grid would."""
        factor = grid_2d_factor(3, 3)
        sorter = ProductNetworkSorter.for_factor(factor, 2, keep_log=False)
        keys = rng.integers(0, 10**6, size=81)
        lattice, _ = sorter.sort_sequence(keys)
        assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))
