"""Larger-scale integration runs (lattice backend; seconds, not minutes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.complexity import sort_rounds
from repro.core.lattice_sort import ProductNetworkSorter
from repro.graphs import (
    cycle_graph,
    de_bruijn_graph,
    k2,
    path_graph,
    petersen_graph,
)
from repro.orders import lattice_to_sequence


@pytest.mark.parametrize(
    "factory,r,size",
    [
        (lambda: path_graph(16), 3, 4096),
        (lambda: path_graph(8), 4, 4096),
        (lambda: cycle_graph(10), 3, 1000),
        (lambda: k2(), 12, 4096),
        (lambda: petersen_graph().canonically_labelled(), 3, 1000),
        (lambda: de_bruijn_graph(4), 3, 4096),
    ],
    ids=["grid16r3", "grid8r4", "torus10r3", "cube12", "petersen3", "debruijn4r3"],
)
def test_large_sorts(factory, r, size, rng):
    factor = factory()
    sorter = ProductNetworkSorter.for_factor(factor, r, keep_log=False)
    assert sorter.network.num_nodes == size
    keys = rng.integers(-(2**31), 2**31, size=size)
    lattice, ledger = sorter.sort_sequence(keys)
    assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))
    s2 = sorter.sorter2d.rounds(factor.n)
    routing = sorter.routing.rounds(factor.n)
    assert ledger.total_rounds == sort_rounds(r, s2, routing)


def test_hypercube_r16_accounting(rng):
    """65,536 keys on the 16-cube: Theorem 1 at real scale."""
    sorter = ProductNetworkSorter.for_factor(k2(), 16, keep_log=False)
    keys = rng.integers(0, 2**31, size=2**16)
    lattice, ledger = sorter.sort_sequence(keys)
    assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))
    assert ledger.total_rounds == 3 * 15**2 + 15 * 14
    assert ledger.s2_calls == 225


def test_float_and_negative_keys_at_scale(rng):
    sorter = ProductNetworkSorter.for_factor(path_graph(10), 3, keep_log=False)
    keys = rng.normal(scale=1e6, size=1000)
    lattice, _ = sorter.sort_sequence(keys)
    assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))


@pytest.mark.slow
def test_grid32_r3(rng):
    """32,768 keys on a 32^3 grid."""
    sorter = ProductNetworkSorter.for_factor(path_graph(32), 3, keep_log=False)
    keys = rng.integers(0, 2**31, size=32**3)
    lattice, ledger = sorter.sort_sequence(keys)
    assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))
    assert ledger.total_rounds == sort_rounds(3, sorter.sorter2d.rounds(32), 31)
