"""Shared fixtures: representative factor graphs and RNGs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    de_bruijn_graph,
    k2,
    path_graph,
    petersen_graph,
    random_connected_graph,
    shuffle_exchange_graph,
    star_graph,
    wheel_graph,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic NumPy RNG for key generation."""
    return np.random.default_rng(12345)


#: small factor instances spanning every §5 family plus adversarial shapes
SMALL_FACTORS = {
    "path3": path_graph(3),
    "path4": path_graph(4),
    "cycle4": cycle_graph(4),
    "cycle5": cycle_graph(5),
    "k2": k2(),
    "complete4": complete_graph(4),
    "star4": star_graph(4),
    "wheel5": wheel_graph(5),
    "cbt1": complete_binary_tree(1),
    "cbt2": complete_binary_tree(2),
    "petersen": petersen_graph(),
    "debruijn2": de_bruijn_graph(2),
    "debruijn3": de_bruijn_graph(3),
    "se3": shuffle_exchange_graph(3),
    "random5": random_connected_graph(5, seed=42),
    "random7": random_connected_graph(7, extra_edge_prob=0.15, seed=7),
}


@pytest.fixture(params=sorted(SMALL_FACTORS), ids=sorted(SMALL_FACTORS))
def any_factor(request):
    """Parametrise a test over every small factor graph."""
    return SMALL_FACTORS[request.param]


@pytest.fixture
def schedule_caches():
    """Pristine schedule caches (emission + compiled kernels) around a test.

    The module-level caches are process-wide; tests asserting hit/miss
    counts or cache sizes request this fixture so earlier tests cannot leak
    state in, and their own entries cannot leak out.
    """
    from repro.schedule import clear_caches

    clear_caches()
    yield
    clear_caches()


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running exhaustive checks")
