#!/usr/bin/env python
"""§5.3 showdown: our generalized sort vs Batcher on the hypercube.

"The time to sort on the hypercube with our algorithm is
3(r-1)^2 + (r-1)(r-2) = O(r^2).  This running time is same as the running
time of the well-known Batcher odd-even merge algorithm for hypercubes.
In fact, Batcher algorithm is a special case of our algorithm."

Both algorithms run on the *same* fine-grained machine simulator, so every
number is a measured synchronous round.  The table shows the two O(r^2)
curves and the constant-factor gap — plus a bonus the paper doesn't
mention: with N = 2 the second block transposition of Step 4 is vacuous
(only two blocks per merge), so our implementation beats the paper's
formula by exactly r - 2 rounds.

Run:  python examples/hypercube_showdown.py [max_r]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import MachineSorter, k2, lattice_to_sequence
from repro.analysis.complexity import hypercube_sort_rounds
from repro.baselines.batcher import batcher_hypercube_rounds, bitonic_sort_on_hypercube


def main(max_r: int = 8) -> None:
    rng = np.random.default_rng(42)
    print(f"{'r':>3} {'keys':>6} {'paper formula':>13} {'ours (measured)':>15} "
          f"{'batcher (measured)':>18} {'ratio':>6}")
    print("-" * 68)
    for r in range(2, max_r + 1):
        keys = rng.integers(0, 10**6, size=2**r)

        machine, ledger = MachineSorter.for_factor(k2(), r).sort(keys)
        assert np.array_equal(lattice_to_sequence(machine.lattice()), np.sort(keys))
        ours = ledger.total_rounds

        batcher_sorted, batcher_rounds = bitonic_sort_on_hypercube(keys)
        assert np.array_equal(batcher_sorted, np.sort(keys))

        paper = hypercube_sort_rounds(r)
        assert ours == paper - max(0, r - 2)
        assert batcher_rounds == batcher_hypercube_rounds(r)
        print(f"{r:>3} {2**r:>6} {paper:>13} {ours:>15} {batcher_rounds:>18} "
              f"{ours / batcher_rounds:>6.2f}")

    print("\nBoth curves are Theta(r^2); Batcher's constant is ~8x smaller —")
    print("the price of an algorithm that also runs, unchanged, on grids, tori,")
    print("Petersen cubes, de Bruijn products and any other product network.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
