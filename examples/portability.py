#!/usr/bin/env python
"""Portability: one algorithm, every product network (the paper's thesis).

"Is it possible to develop algorithms for product networks capitalizing on
their common properties only, so that the same algorithm can be made to run
on all product networks? ... at least for the sorting problem, the answer
is yes."

This example sorts the *same* keys with the *same* code on the products of
eight different factor topologies — grids, tori, hypercubes, Petersen
cubes, trees, de Bruijn graphs, stars, and a random connected graph drawn
on the spot — and tabulates the §5 cost models each network gets.  Only the
costs differ; the algorithm and its correctness never change.

Run:  python examples/portability.py [seed]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    ProductNetworkSorter,
    complete_binary_tree,
    cycle_graph,
    de_bruijn_graph,
    k2,
    lattice_to_sequence,
    path_graph,
    petersen_graph,
    random_connected_graph,
    star_graph,
)


def main(seed: int = 0) -> None:
    instances = [
        (path_graph(4), 3, "grid (§5.1)"),
        (cycle_graph(4), 3, "torus (Corollary)"),
        (k2(), 6, "hypercube (§5.3)"),
        (petersen_graph().canonically_labelled(), 2, "Petersen cube (§5.4)"),
        (complete_binary_tree(2), 2, "mesh-connected trees (§5.2)"),
        (de_bruijn_graph(3), 2, "product of de Bruijn (§5.5)"),
        (star_graph(4), 3, "star product (no Hamiltonian path!)"),
        (random_connected_graph(5, seed=seed), 3, f"random connected (seed={seed})"),
    ]
    rng = np.random.default_rng(seed)
    print(f"{'network':<38} {'N':>3} {'r':>2} {'keys':>6} {'S2 model':<24} {'rounds':>7} ok")
    print("-" * 95)
    for factor, r, label in instances:
        sorter = ProductNetworkSorter.for_factor(factor, r, keep_log=False)
        keys = rng.integers(0, 10**6, size=sorter.network.num_nodes)
        lattice, ledger = sorter.sort_sequence(keys)
        ok = bool(np.array_equal(lattice_to_sequence(lattice), np.sort(keys)))
        print(
            f"{label:<38} {factor.n:>3} {r:>2} {factor.n**r:>6} "
            f"{sorter.sorter2d.name:<24} {ledger.total_rounds:>7} {'yes' if ok else 'NO'}"
        )
        assert ok
    print("\nSame algorithm, same code path, eight topologies — only the cost model varies.")
    print("Try your own factor graph:")
    print("    FactorGraph.from_edge_list(n, edges) -> ProductNetworkSorter.for_factor(g, r)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
