#!/usr/bin/env python
"""The paper's worked example, reproduced state by state (Figs. 12-15).

Nancy Eleser's running example from the paper: three sorted sequences of
nine keys each, stored on the three ``[u]PG^3_2`` subgraphs of a
3-dimensional product (N = 3), merged by the multiway-merge algorithm.
Every printed grid matches the corresponding figure of the paper, including
the two key exchanges called out in the Fig. 15 captions.

Run:  python examples/worked_example.py
"""

from __future__ import annotations

import numpy as np

from repro import path_graph
from repro.core.lattice_sort import ProductNetworkSorter
from repro.core.multiway_merge import distribute, multiway_merge
from repro.observability import CallbackSubscriber, EventBus
from repro.orders import lattice_to_sequence, sequence_to_lattice

A = {
    0: [0, 4, 4, 5, 5, 7, 8, 8, 9],
    1: [1, 4, 5, 5, 5, 6, 7, 7, 8],
    2: [0, 0, 1, 1, 1, 2, 3, 4, 9],
}

FIGURE_FOR_EVENT = {
    "merge3_after_step2": "Fig. 13b — after Step 2: columns merged into C_v",
    "merge3_after_step3": "Fig. 14 — after Step 3 (pure reinterpretation: no data moved)",
    "merge3_step4_sorted": "Fig. 15a — Step 4: blocks sorted in alternating directions",
    "merge3_step4_transposition0": "Fig. 15b — first odd-even block transposition",
    "merge3_step4_transposition1": "Fig. 15c — second odd-even block transposition",
    "merge3_step4_final": "Fig. 15d — final block sorts: merge complete",
}


def show(lattice: np.ndarray, caption: str) -> None:
    print(f"\n--- {caption} ---")
    for u in range(3):
        print(f"  [{u}]PG_2   " + "   ".join(" ".join(f"{x}" for x in row) for row in lattice[u]))


def main() -> None:
    print("Paper worked example: merge three sorted 9-key sequences on PG_3 of a 3-node factor")

    # Fig. 12 top: each A_u snake-ordered on its [u]PG^3_2 subgraph
    lattice = np.stack([sequence_to_lattice(np.array(A[u]), 3, 2) for u in range(3)])
    show(lattice, "Fig. 12 — initial: A_u in snake order on [u]PG^3_2")

    # Fig. 12 bottom: Step 1 is free; reading column v gives B_{u,v}
    print("\nStep 1 (no data movement): the B_{u,v} subsequences are already in place:")
    for u in range(3):
        print(f"  A_{u} -> B_{u},v = {distribute(A[u], 3)}")

    sorter = ProductNetworkSorter.for_factor(path_graph(3), 3)
    states: dict[str, np.ndarray] = {}
    bus = EventBus()
    bus.subscribe(CallbackSubscriber(lambda e, lat: states.update({e: lat})))
    merged, ledger = sorter.merge_sorted_subgraphs(lattice, tracer=bus)

    for event, caption in FIGURE_FOR_EVENT.items():
        show(states[event], caption)

    print("\nFig. 15b check: keys 3 and 2 moved from nodes (1,2,1),(1,2,2) "
          "to (0,2,1),(0,2,2), displacing two 4s:",
          states["merge3_step4_transposition0"][0, 2, 1],
          states["merge3_step4_transposition0"][0, 2, 2])
    print("Fig. 15c check: key 5 at (2,0,0) exchanged with 6 at (1,0,0):",
          states["merge3_step4_transposition1"][1, 0, 0],
          states["merge3_step4_transposition1"][2, 0, 0])

    final = list(lattice_to_sequence(merged))
    print(f"\nsnake sequence of the merged lattice:\n  {final}")
    assert final == sorted(A[0] + A[1] + A[2])
    assert final == multiway_merge([A[0], A[1], A[2]])  # sequence level agrees
    print(f"\ncost: {ledger}")
    print("Lemma 3 at k=3: M_3 = 3*S_2 + 2*R  "
          f"(3 two-dimensional sorts, 2 routings — exactly what the ledger shows)")


if __name__ == "__main__":
    main()
