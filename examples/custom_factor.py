#!/usr/bin/env python
"""Define your own interconnect and sort on it — the downstream-user path.

The paper's promise to a machine designer: pick *any* connected graph as
the building block of your network and the sorting algorithm comes for
free.  This example plays that designer: it invents a 6-node "bowtie"
topology, inspects what the framework infers about it (Hamiltonian path?
embedding quality? which S₂/R cost models apply?), relabels it canonically,
builds the 3-dimensional product (216 nodes), sorts on it, and prints the
measured invoice next to the Theorem 1 prediction — plus the same exercise
on the fine-grained machine for the 2-D case, with a traffic profile.

Run:  python examples/custom_factor.py
"""

from __future__ import annotations

import numpy as np

from repro import FactorGraph, MachineSorter, ProductNetworkSorter, lattice_to_sequence
from repro.analysis import network_prediction
from repro.machine.stats import TrafficRecorder
from repro.machine.machine import NetworkMachine
from repro.machine.metrics import CostLedger
from repro.viz import render_factor_graph


def main() -> None:
    # a "bowtie": two triangles sharing a bridge edge
    bowtie = FactorGraph.from_edge_list(
        6,
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)],
        name="bowtie",
    )
    print(render_factor_graph(bowtie))

    canon = bowtie.canonically_labelled()
    print("\nafter canonical relabelling:")
    print(render_factor_graph(canon))

    # the cost models the framework selects for this topology
    pred = network_prediction(canon, 3)
    print(
        f"\nselected models: S2 = {pred.s2_model} ({pred.s2_rounds} rounds), "
        f"R = {pred.routing_model} ({pred.routing_rounds} rounds)"
    )
    print(f"Theorem 1 prediction for r=3: {pred.total_rounds} rounds  [{pred.asymptotic}]")

    # sort 216 keys on the 3-dimensional bowtie product
    sorter = ProductNetworkSorter.for_factor(canon, 3)
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 10**6, size=216)
    lattice, ledger = sorter.sort_sequence(keys)
    assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))
    print(f"\nsorted 216 keys: measured {ledger.total_rounds} rounds "
          f"({ledger.s2_calls} block sorts, {ledger.routing_calls} routings)")
    assert ledger.total_rounds == pred.total_rounds

    # fine-grained run at r = 2 with traffic instrumentation
    ms = MachineSorter.for_factor(canon, 2)
    keys2 = rng.integers(0, 10**6, size=36)
    machine = NetworkMachine(ms.network, keys2)
    machine.recorder = TrafficRecorder(ms.network)
    blocks = ms._pg2_blocks(ms.network.subgraph((), ()))
    ms.sorter.sort_batch(machine, blocks, [False] * len(blocks))
    stats = machine.recorder.stats()
    assert np.array_equal(lattice_to_sequence(machine.lattice()), np.sort(keys2))
    print(
        f"\nfine-grained bowtie^2 sort: {machine.rounds} measured rounds, "
        f"{stats.pair_count} compare-exchanges "
        f"({stats.adjacent_pairs} adjacent, {stats.routed_pairs} routed)"
    )
    print("\nYour topology worked on the first try — that is the paper's point.")


if __name__ == "__main__":
    main()
