#!/usr/bin/env python
"""Quickstart: sort 512 keys on an 8 x 8 x 8 grid product network.

The minimal end-to-end tour of the public API:

1. build a factor graph and its r-dimensional product;
2. sort one key per node into snake order with the paper's multiway-merge
   algorithm;
3. read the cost ledger and check it against Theorem 1's closed form
   ``S_r(N) = (r-1)^2 S_2(N) + (r-1)(r-2) R(N)``.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ProductNetworkSorter, is_snake_sorted, lattice_to_sequence, path_graph
from repro.analysis.complexity import sort_rounds


def main() -> None:
    # 1. the network: the 3-dimensional product of an 8-node path = 8x8x8 grid
    factor = path_graph(8)
    sorter = ProductNetworkSorter.for_factor(factor, r=3)
    network = sorter.network
    print(f"network: {network}  ({network.num_nodes} nodes, {network.num_edges} links)")
    print(f"S2 model: {sorter.sorter2d.name}   routing model: {sorter.routing.name}")

    # 2. one key per node, then sort
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 10_000, size=network.num_nodes)
    lattice, ledger = sorter.sort_sequence(keys)

    assert is_snake_sorted(lattice)
    assert np.array_equal(lattice_to_sequence(lattice), np.sort(keys))
    print(f"\nsorted {network.num_nodes} keys into snake order: OK")
    print(f"first 10 of the snake sequence: {lattice_to_sequence(lattice)[:10]}")

    # 3. the invoice, checked against Theorem 1
    s2 = sorter.sorter2d.rounds(factor.n)
    routing = sorter.routing.rounds(factor.n)
    predicted = sort_rounds(3, s2, routing)
    print(f"\ncost ledger: {ledger}")
    print(
        f"Theorem 1:  (r-1)^2 * S2 + (r-1)(r-2) * R = "
        f"4*{s2} + 2*{routing} = {predicted} rounds"
    )
    assert ledger.total_rounds == predicted
    print("measured == predicted: the ledger reproduces Theorem 1 exactly")


if __name__ == "__main__":
    main()
