#!/usr/bin/env python
"""Explore the structures behind the algorithm (paper §2, Figs. 1-5).

Prints, for a small product network:

* the recursive product construction (Fig. 1): nodes, edges, degrees;
* the subgraph decomposition ``[u]PG^i_{r-1}`` you get by erasing one
  dimension (Fig. 2);
* the N-ary Gray sequence / snake order (Fig. 3, Definition 3);
* the ``[u]Q^1`` subsequences (Fig. 4) and their closed-form positions
  ``u, 2N-u-1, 2N+u, ...`` — the reason merge Step 1 is free;
* the group sequence ordering the G subgraphs (Fig. 5).

Run:  python examples/network_explorer.py [N] [r]
"""

from __future__ import annotations

import sys

from repro import ProductGraph, path_graph
from repro.orders import (
    gray_sequence,
    group_sequence,
    hamming_weight,
    subsequence_positions,
)


def label_str(label) -> str:
    return "".join(map(str, label))


def main(n: int = 3, r: int = 3) -> None:
    factor = path_graph(n)
    pg = ProductGraph(factor, r)
    print(f"factor G = {factor.name}; product PG_{r}: "
          f"{pg.num_nodes} nodes, {pg.num_edges} edges")

    # Fig. 1/2: dimension decomposition
    print(f"\nerasing dimension 1 leaves {n} copies of PG_{r - 1} (Fig. 2):")
    for u, view in enumerate(pg.dimension_copies(1)):
        nodes = [label_str(lab) for lab in view.nodes()]
        print(f"  [{u}]PG^1_{r - 1}: {' '.join(nodes[:9])}{' ...' if len(nodes) > 9 else ''}")

    # Fig. 3: the snake order
    seq = gray_sequence(n, r)
    print(f"\nsnake order = N-ary Gray sequence Q_{r} (Fig. 3):")
    print("  " + " ".join(label_str(lab) for lab in seq))
    print("  consecutive labels always differ by one in exactly one symbol")

    # Fig. 4: [u]Q^1 subsequences and the closed-form positions
    print(f"\nsubsequences [u]Q^1_{r - 1} (Fig. 4) — positions u, 2N-u-1, 2N+u, ...:")
    for u in range(n):
        positions = subsequence_positions(n, r, u)
        labels = [label_str(seq[p]) for p in positions]
        print(f"  u={u}: positions {positions}")
        print(f"        labels    {' '.join(labels)}")

    # Fig. 5: group sequence of the G subgraphs
    groups = group_sequence(n, r, erased=1)
    print(f"\ngroup sequence [*]Q^1 — the G subgraphs in snake order (Fig. 5):")
    tagged = [
        f"{label_str(g)}*({'even' if hamming_weight(g) % 2 == 0 else 'odd'})" for g in groups
    ]
    print("  " + " ".join(tagged))
    print("  even groups read their G subgraph forward, odd ones backward —")
    print("  the alternation Step 4's block sorts rely on")

    if r >= 2:
        pg2_groups = group_sequence(n, r, erased=2) if r > 2 else [()]
        print(f"\nPG_2 blocks at dimensions {{1,2}} in snake order ({len(pg2_groups)} blocks):")
        print("  " + " ".join(label_str(g) + "**" for g in pg2_groups))


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args) if args else main()
