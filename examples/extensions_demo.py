#!/usr/bin/env python
"""The beyond-the-paper extensions, demonstrated on one dataset.

Three explorations grounded in the paper's §6 and §1 remarks:

1. **adaptive clean-check** — low-cardinality inputs skip Step 4 wholesale;
2. **bulk regime** — c keys per node via merge-split lifting: per-key cost
   flat in c on fixed hardware;
3. **randomized slab sort** — the §6 open problem, measured: infeasible at
   one key per node, practical with modest slack.

Run:  python examples/extensions_demo.py
"""

from __future__ import annotations

import random

import numpy as np

from repro import path_graph, lattice_to_sequence
from repro.core.adaptive import AdaptiveProductNetworkSorter
from repro.core.lattice_sort import ProductNetworkSorter
from repro.extensions import bulk_multiway_merge_sort, randomized_slab_sort


def demo_adaptive() -> None:
    print("=" * 64)
    print("1. Adaptive clean-check (skip Step 4 when the interleave is clean)")
    plain = ProductNetworkSorter.for_factor(path_graph(3), 4, keep_log=False)
    adaptive = AdaptiveProductNetworkSorter.for_factor(path_graph(3), 4, keep_log=False)
    rng = np.random.default_rng(0)
    for label, keys in [
        ("all-equal keys", np.zeros(81)),
        ("random 0-1 keys", rng.integers(0, 2, 81).astype(float)),
        ("full-entropy keys", rng.permutation(81).astype(float)),
    ]:
        _, p = plain.sort_sequence(keys)
        lat, a = adaptive.sort_sequence(keys)
        assert np.array_equal(lattice_to_sequence(lat), np.sort(keys))
        print(f"  {label:20s} plain {p.total_rounds:4d} rounds | adaptive "
              f"{a.total_rounds:4d} rounds (skipped {adaptive.steps4_skipped} levels)")


def demo_bulk() -> None:
    print("=" * 64)
    print("2. Bulk regime (c keys per node, merge-split compare-exchange)")
    rng = random.Random(1)
    for c in (1, 4, 16):
        keys = [rng.randrange(10**6) for _ in range(c * 27)]
        out, stats = bulk_multiway_merge_sort(keys, 3, c)
        assert out == sorted(keys)
        print(f"  c={c:3d}: {stats.total_keys:4d} keys on 27 nodes -> "
              f"{stats.modelled_rounds:4d} modelled rounds "
              f"({stats.modelled_rounds // c} per unit load — flat in c)")


def demo_randomized() -> None:
    print("=" * 64)
    print("3. Randomized slab sort (the paper's §6 open problem, measured)")
    rng = random.Random(2)
    keys = [rng.randrange(10**6) for _ in range(4**3)]
    try:
        randomized_slab_sort(keys, 4, 3, slack=1.0, rng=random.Random(3), max_attempts=40)
        print("  strict one-key capacity: balanced sample found (rare luck)")
    except RuntimeError:
        print("  strict one-key capacity: NO balanced sample in 40 attempts "
              "(expected — exact slab fits almost never happen)")
    for slack in (1.25, 1.5, 2.0):
        out, stats = randomized_slab_sort(
            keys, 4, 3, slack=slack, rng=random.Random(3), max_attempts=2000
        )
        assert out == sorted(keys)
        print(f"  slack {slack:4.2f}: sorted after {stats.attempts:3d} sampling "
              f"attempt(s), worst slab load {max(stats.loads)}/{stats.capacity}")
    print("  => randomization pays only once nodes hold more than one key —")
    print("     the regime of the randomized literature the paper cites.")


def main() -> None:
    demo_adaptive()
    demo_bulk()
    demo_randomized()


if __name__ == "__main__":
    main()
